"""Textual IR parser — the inverse of :mod:`repro.ir.printer`.

Parses the LLVM-flavoured form the printer emits, giving the IR a
round-trippable on-disk format (used by tests and by the Table 4
line-count tooling).  The grammar is exactly the printer's output:
struct definitions, globals, ``declare``/``define`` with attribute
words, one instruction per line.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Cmp,
    GEP,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
    BINARY_OPS,
    CAST_KINDS,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    IRType,
    PointerType,
    StructType,
    StructField,
    VOID,
)
from repro.ir.values import Constant, GlobalVariable, UndefValue, Value

_TOKEN = re.compile(r"""
    c"(?:[^"\\]|\\.)*"           # string constant
  | %[A-Za-z0-9_.$@\-]+          # local name
  | @[A-Za-z0-9_.$@\-]+          # global name
  | \[ | \] | \{ | \} | \( | \) | , | = | \*
  | -?\d+\.\d+(?:e[+-]?\d+)?     # float literal
  | -?\d+                        # int literal
  | \.\.\.
  | [A-Za-z_][A-Za-z0-9_.\-]*    # word
""", re.VERBOSE)


def _tokenize(line: str) -> List[str]:
    return _TOKEN.findall(line)


class _LineParser:
    """Token cursor over one line."""

    def __init__(self, tokens: List[str], line_no: int):
        self.tokens = tokens
        self.pos = 0
        self.line_no = line_no

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else ""

    def next(self) -> str:
        token = self.peek()
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise IRError(
                f"line {self.line_no}: expected {token!r}, got {got!r}")

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.pos += 1
            return True
        return False

    @property
    def done(self) -> bool:
        return self.pos >= len(self.tokens)


class ModuleParser:
    """Parses the printer's module format."""

    def __init__(self, text: str, name: str = "parsed"):
        self.text = text
        self.module = Module(name)
        self._pending_structs: Dict[str, StructType] = {}

    def parse(self) -> Module:
        lines = self.text.splitlines()
        # Pass 1: structs, globals and every function *header*, so
        # bodies may reference functions declared later in the file.
        definition_starts: List[int] = []
        i = 0
        while i < len(lines):
            line = lines[i].strip()
            i += 1
            if not line or line.startswith(";"):
                continue
            if line.startswith("%") and "= type" in line:
                self._parse_struct(line, i)
            elif line.startswith("@"):
                self._parse_global(line, i)
            elif line.startswith("declare"):
                self._parse_declaration(line, i)
            elif line.startswith("define"):
                definition_starts.append(i - 1)
                header = line.rstrip("{").strip()
                fn = self._parse_header(header, i, "define")
                self.module.add_function(fn)
                while i < len(lines) and lines[i].strip() != "}":
                    i += 1
                i += 1
            else:
                raise IRError(f"line {i}: unexpected {line!r}")
        # Pass 2: function bodies.
        for start in definition_starts:
            self._parse_definition(lines, start)
        return self.module

    # -- types --------------------------------------------------------------------

    def _struct(self, name: str) -> StructType:
        if name in self.module.structs:
            return self.module.structs[name]
        st = self._pending_structs.setdefault(name, StructType(name))
        return st

    def parse_type(self, p: _LineParser) -> IRType:
        token = p.next()
        base: IRType
        if token == "void":
            base = VOID
        elif token.startswith("%"):
            base = self._struct(token[1:])
        elif token == "[":
            count = int(p.next())
            p.expect("x")
            element = self.parse_type(p)
            p.expect("]")
            base = ArrayType(element, count)
        elif re.fullmatch(r"i\d+", token):
            base = IntType(int(token[1:]))
        elif re.fullmatch(r"f\d+", token):
            base = FloatType(int(token[1:]))
        else:
            raise IRError(f"line {p.line_no}: unknown type {token!r}")
        if p.peek() == "color":
            p.next()
            p.expect("(")
            color = p.next()
            p.expect(")")
            base = base.with_color(color)
        while p.accept("*"):
            base = PointerType(base)
        return base

    # -- top-level ------------------------------------------------------------------

    def _parse_struct(self, line: str, line_no: int) -> None:
        p = _LineParser(_tokenize(line), line_no)
        name = p.next()[1:]
        p.expect("=")
        p.expect("type")
        p.expect("{")
        fields = []
        while not p.accept("}"):
            ftype = self.parse_type(p)
            fname = p.next()
            fields.append(StructField(fname, ftype))
            p.accept(",")
        st = self._struct(name)
        st.set_body(fields)
        if name not in self.module.structs:
            self.module.add_struct(st)

    def _parse_global(self, line: str, line_no: int) -> None:
        p = _LineParser(_tokenize(line), line_no)
        name = p.next()[1:]
        p.expect("=")
        p.expect("global")
        vtype = self.parse_type(p)
        init: Optional[Constant] = None
        token = p.next()
        if token == "zeroinitializer" or not token:
            init = None
        elif token.startswith('c"'):
            init = Constant(vtype, _unescape(token))
        elif "." in token or "e" in token:
            init = Constant(vtype, float(token))
        else:
            init = Constant(vtype, int(token))
        self.module.add_global(GlobalVariable(name, vtype, init))

    _ATTR_WORDS = frozenset({"extern", "within", "ignore", "entry",
                             "address-taken"})

    def _parse_header(self, line: str, line_no: int, keyword: str):
        p = _LineParser(_tokenize(line), line_no)
        p.expect(keyword)
        ret = self.parse_type(p)
        name = p.next()[1:]
        p.expect("(")
        params: List[Tuple[IRType, str]] = []
        vararg = False
        while not p.accept(")"):
            if p.accept("..."):
                vararg = True
                continue
            ptype = self.parse_type(p)
            pname = p.next()
            params.append((ptype, pname[1:] if pname.startswith("%")
                           else pname))
            p.accept(",")
        attrs = []
        while not p.done and p.peek() in self._ATTR_WORDS:
            attrs.append(p.next())
        ftype = FunctionType(ret, [t for t, _ in params], vararg)
        fn = Function(name, ftype, [n for _, n in params], attrs)
        return fn

    def _parse_declaration(self, line: str, line_no: int) -> None:
        fn = self._parse_header(line, line_no, "declare")
        self.module.add_function(fn)

    def _parse_definition(self, lines: List[str], start: int) -> int:
        header = lines[start].strip().rstrip("{").strip()
        template = self._parse_header(header, start + 1, "define")
        fn = self.module.get_function(template.name)
        body = _FunctionBodyParser(self, fn)
        i = start + 1
        while i < len(lines):
            line = lines[i].strip()
            if line == "}":
                body.finish()
                return i
            if line and not line.startswith(";"):
                body.add_line(line, i + 1)
            i += 1
        raise IRError(f"function @{fn.name}: missing closing brace")


class _FunctionBodyParser:
    """Two-pass body parser: collect lines per block, then build
    instructions with forward references resolved."""

    def __init__(self, owner: ModuleParser, fn: Function):
        self.owner = owner
        self.fn = fn
        self.blocks: Dict[str, BasicBlock] = {}
        self.block_lines: List[Tuple[BasicBlock, str, int]] = []
        self.current: Optional[BasicBlock] = None
        self.values: Dict[str, Value] = {
            a.name: a for a in fn.args}
        self._placeholders: Dict[str, Value] = {}

    def block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            self.blocks[name] = self.fn.add_block(name)
        return self.blocks[name]

    def add_line(self, line: str, line_no: int) -> None:
        if line.endswith(":"):
            self.current = self.block(line[:-1])
            return
        if self.current is None:
            self.current = self.block("entry")
        self.block_lines.append((self.current, line, line_no))

    # -- operands ------------------------------------------------------------------

    def value(self, p: _LineParser, type_hint: IRType) -> Value:
        token = p.next()
        if token.startswith("%"):
            name = token[1:]
            if name in self.values:
                return self.values[name]
            placeholder = self._placeholders.get(name)
            if placeholder is None:
                placeholder = UndefValue(type_hint)
                placeholder.name = name
                self._placeholders[name] = placeholder
            return placeholder
        if token.startswith("@"):
            name = token[1:]
            if name in self.owner.module.globals:
                return self.owner.module.globals[name]
            return self.owner.module.get_function(name)
        if token == "undef":
            return UndefValue(type_hint)
        if token.startswith('c"'):
            text = _unescape(token)
            return Constant(ArrayType(IntType(8), len(text) + 1), text)
        if "." in token or ("e" in token and token[0].isdigit()):
            return Constant(type_hint, float(token))
        return Constant(type_hint, int(token))

    def typed_value(self, p: _LineParser) -> Value:
        vtype = self.owner.parse_type(p)
        return self.value(p, vtype)

    def define(self, name: str, instr: Instruction) -> None:
        instr.name = name
        self.values[name] = instr
        placeholder = self._placeholders.pop(name, None)
        if placeholder is not None:
            placeholder.replace_all_uses_with(instr)

    # -- instructions ----------------------------------------------------------------

    def finish(self) -> None:
        pending_phis = []
        for block, line, line_no in self.block_lines:
            p = _LineParser(_tokenize(line), line_no)
            result_name = None
            if p.peek().startswith("%") and p.peek(1) == "=":
                result_name = p.next()[1:]
                p.next()
            instr = self._parse_instruction(p, result_name,
                                            pending_phis)
            block.instructions.append(instr)
            instr.parent = block
            if result_name is not None:
                self.define(result_name, instr)
        for phi, entries in pending_phis:
            for value_token, block_name, vtype in entries:
                value = self._resolve_token(value_token, vtype)
                phi.add_incoming(value, self.block(block_name))
        if self._placeholders:
            missing = ", ".join(sorted(self._placeholders))
            raise IRError(
                f"@{self.fn.name}: unresolved values {missing}")

    def _resolve_token(self, token: str, vtype: IRType) -> Value:
        p = _LineParser([token], 0)
        return self.value(p, vtype)

    def _parse_instruction(self, p: _LineParser, result, pending_phis):
        op = p.next()
        if op == "alloca":
            return Alloca(self.owner.parse_type(p))
        if op == "load":
            return Load(self.typed_value(p))
        if op == "store":
            value = self.typed_value(p)
            p.accept(",")
            ptr = self.typed_value(p)
            return Store(value, ptr)
        if op in BINARY_OPS:
            vtype = self.owner.parse_type(p)
            lhs = self.value(p, vtype)
            p.accept(",")
            rhs = self.value(p, vtype)
            return BinOp(op, lhs, rhs)
        if op == "cmp":
            predicate = p.next()
            vtype = self.owner.parse_type(p)
            lhs = self.value(p, vtype)
            p.accept(",")
            rhs = self.value(p, vtype)
            return Cmp(predicate, lhs, rhs)
        if op == "gep":
            ptr = self.typed_value(p)
            indices = []
            while p.accept(","):
                indices.append(self.typed_value(p))
            return GEP(ptr, indices)
        if op == "call":
            self.owner.parse_type(p)  # printed result type
            callee_token = p.next()
            p.expect("(")
            args = []
            while not p.accept(")"):
                args.append(self.typed_value(p))
                p.accept(",")
            callee = self._resolve_callee(callee_token)
            return Call(callee, args)
        if op == "br":
            cond = self.typed_value(p)
            p.accept(",")
            p.expect("label")
            then_block = self.block(p.next()[1:])
            p.accept(",")
            p.expect("label")
            else_block = self.block(p.next()[1:])
            return Branch(cond, then_block, else_block)
        if op == "jmp":
            p.expect("label")
            return Jump(self.block(p.next()[1:]))
        if op == "ret":
            if p.peek() == "void":
                return Ret()
            return Ret(self.typed_value(p))
        if op == "phi":
            vtype = self.owner.parse_type(p)
            phi = Phi(vtype)
            entries = []
            while p.accept("["):
                value_token = p.next()
                p.accept(",")
                block_name = p.next()[1:]
                p.expect("]")
                p.accept(",")
                entries.append((value_token, block_name, vtype))
            pending_phis.append((phi, entries))
            return phi
        if op in CAST_KINDS:
            value = self.typed_value(p)
            p.expect("to")
            to_type = self.owner.parse_type(p)
            return Cast(op, value, to_type)
        if op == "select":
            cond = self.typed_value(p)
            p.accept(",")
            a = self.typed_value(p)
            p.accept(",")
            b = self.typed_value(p)
            return Select(cond, a, b)
        if op == "unreachable":
            return Unreachable()
        raise IRError(f"line {p.line_no}: unknown instruction {op!r}")

    def _resolve_callee(self, token: str) -> Value:
        if token.startswith("@"):
            return self.owner.module.get_function(token[1:])
        if token.startswith("%"):
            p = _LineParser([token], 0)
            return self.value(
                p, PointerType(FunctionType(VOID, [])))
        raise IRError(f"cannot call {token!r}")


def _unescape(token: str) -> str:
    body = token[2:-1]
    return (body.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse the textual IR form produced by
    :func:`repro.ir.printer.print_module`."""
    return ModuleParser(text, name).parse()
