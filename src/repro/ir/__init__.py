"""repro.ir — an SSA intermediate representation modelled on LLVM IR.

The IR considers an abstract machine with a memory and an infinite
number of typed registers (paper §2.2).  An instruction takes values
as input and *is* its own output register (static single assignment),
so instructions double as values.

Public surface:

* :mod:`repro.ir.types` — the type system, including the secure-type
  ``color`` qualifier carried by types and struct fields.
* :mod:`repro.ir.values` — constants, globals, arguments.
* :mod:`repro.ir.instructions` — the instruction set.
* :mod:`repro.ir.module` — ``Module`` / ``Function`` / ``BasicBlock``.
* :mod:`repro.ir.builder` — ``IRBuilder`` for convenient construction.
* :mod:`repro.ir.printer` / :mod:`repro.ir.parser` — textual form.
* :mod:`repro.ir.verifier` — structural well-formedness checks.
* :mod:`repro.ir.cfg` — dominators, postdominators, orderings.
* :mod:`repro.ir.passes` — mem2reg, dead code elimination.
* :mod:`repro.ir.interp` — step-based interpreter with a simulated
  flat address space and deterministic interleaving control.
"""

from repro.ir.types import (
    IRType,
    VoidType,
    IntType,
    FloatType,
    PointerType,
    ArrayType,
    StructType,
    StructField,
    FunctionType,
    VOID,
    I1,
    I8,
    I16,
    I32,
    I64,
    F32,
    F64,
)
from repro.ir.values import (
    Value,
    Constant,
    UndefValue,
    GlobalVariable,
    Argument,
)
from repro.ir.instructions import (
    Instruction,
    Alloca,
    Load,
    Store,
    BinOp,
    Cmp,
    GEP,
    Call,
    Branch,
    Jump,
    Ret,
    Phi,
    Cast,
    Select,
    Unreachable,
)
from repro.ir.module import Module, Function, BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_module, print_function, print_instruction
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module, verify_function

__all__ = [
    "IRType", "VoidType", "IntType", "FloatType", "PointerType",
    "ArrayType", "StructType", "StructField", "FunctionType",
    "VOID", "I1", "I8", "I16", "I32", "I64", "F32", "F64",
    "Value", "Constant", "UndefValue", "GlobalVariable", "Argument",
    "Instruction", "Alloca", "Load", "Store", "BinOp", "Cmp", "GEP",
    "Call", "Branch", "Jump", "Ret", "Phi", "Cast", "Select",
    "Unreachable",
    "Module", "Function", "BasicBlock", "IRBuilder",
    "print_module", "print_function", "print_instruction",
    "parse_module",
    "verify_module", "verify_function",
]
