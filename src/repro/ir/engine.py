"""Pre-decoded ("threaded-code") execution engine for the IR
interpreter.

The legacy :meth:`ExecutionContext._execute` re-decodes every
instruction on every step: a ~15-branch ``isinstance`` chain, operand
resolution through :meth:`ExecutionContext.value_of` (four more
``isinstance`` checks per operand), property walks (``instr.ptr`` is a
list slice per access) and a full GEP type-walk per address
computation.  Real interpreters compile the IR *once* into a directly
executable form; this module does the same for the abstract machine:

* each :class:`~repro.ir.instructions.Instruction` is translated into
  one specialized Python closure ``op(ctx, frame) -> advanced`` with
  its operands pre-resolved — constants (and loaded global addresses)
  become captured values, SSA registers become direct
  ``frame.values`` lookups, GEP offset chains are pre-flattened for
  constant indices, and branch targets are pre-bound to the target
  block's closure list;
* :meth:`DecodedExecutionContext.step` is then "fetch closure, call
  it" — no per-step decoding at all.

The translation is a *faithful substitution*: step-at-a-time
semantics, step counts, ``BLOCK``/retry, trampoline :class:`PushCall`
handling, access policies, access observers and every fault message
are preserved exactly (``tests/ir/test_engine_equivalence.py`` runs
both engines differentially).  Lazily-allocated machine state (string
interning, function code addresses) stays lazy so the two engines
produce bit-identical memory images.

Decoded code is cached per :class:`~repro.ir.module.Function` on the
owning :class:`~repro.ir.interp.Machine` and revalidated against a
structural fingerprint (opcode identities, operand identities,
branch/phi targets — not just shape, so same-shape in-place mutation
is caught too), so IR mutated between runs (passes, partitioning) is
re-decoded automatically; mutating a function *while* it is
executing additionally requires :meth:`Machine.invalidate_decoded`.
Fingerprints are O(instructions), so they are recomputed only when
the machine's decode epoch advances (each :meth:`Machine.spawn`) —
per-call lookups within one run are a dict hit plus an int compare.
The cache itself is bounded (:data:`~repro.ir.interp.DECODE_CACHE_CAP`
entries, oldest evicted first): compiled closures strongly reference
the IR they execute, so weak keying could never collect an entry, and
without eviction a long-running machine that replaces modules would
retain every dead function body forever.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, List, Tuple

from repro.errors import IRError, RuntimeFault
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Cmp,
    GEP,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from repro.ir.interp import (
    _INT64_MASK,
    _trunc_div,
    BLOCK,
    ExecutionContext,
    Frame,
    Machine,
    PushCall,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import ArrayType, IntType, StructType
from repro.ir.values import Constant, GlobalVariable, UndefValue, Value

#: A decoded instruction: returns True when the context advanced
#: (mirrors the legacy ``_execute`` contract; False means blocked).
Op = Callable[["DecodedExecutionContext", Frame], bool]

#: Sentinel distinguishing "slot not mapped" from a stored None.
_UNMAPPED = object()


class OpList(list):
    """A block's closure list, annotated with its fused burst form.

    ``burst[i]`` is either None (execute ``self[i]`` alone) or a
    closure running the maximal straight-line run of pure ops starting
    at ``i``; ``blen[i]`` is that run's length in steps (used to keep
    step budgets exact — a fused run is never entered when it could
    overshoot the remaining limit).

    ``traces`` is None or the :class:`repro.ir.trace.TraceEntry`
    headed at this block (consulted by the traced engine's
    ``run_burst`` when dispatching at index 0; the plain decoded
    engine never reads it).
    """

    __slots__ = ("burst", "blen", "traces")


#: Instructions that always advance ``frame.index`` to their own
#: successor and can neither block, push/pop frames, nor spawn
#: contexts — safe to fuse into a straight-line run.
_SEQUENTIAL = (Alloca, Load, Store, BinOp, Cmp, GEP, Cast, Select)

#: Instructions that end a fused run after executing (they leave the
#: current closure list or always fault).
_TERMINAL = (Branch, Jump, Unreachable)


class DecodedFunction:
    """The decoded form of one function: a closure list per block."""

    __slots__ = ("function", "fingerprint", "block_ops", "entry_ops",
                 "epoch")

    def __init__(self, function: Function, fingerprint: Tuple,
                 block_ops: Dict[BasicBlock, List[Op]]):
        self.function = function
        self.fingerprint = fingerprint
        self.block_ops = block_ops
        self.entry_ops: List[Op] = (
            block_ops[function.entry_block] if function.blocks else [])
        #: Decode epoch this code was last validated in (see
        #: :func:`decode_function`).
        self.epoch = -1


def _fingerprint(fn: Function) -> Tuple[int, int, int]:
    """Structural fingerprint of ``fn``'s body.

    Covers instruction identities and opcodes, operand identities,
    control-flow targets (branch/jump successors, phi predecessor
    blocks) and the per-instruction variant fields the decoder bakes
    into closures (binop opcode, cmp predicate, cast kind) — so any
    in-place mutation a pass can make invalidates the compiled code,
    including count-preserving ones like operand replacement or
    branch retargeting that the old ``(n_blocks, n_instrs)`` shape
    check missed.
    """
    acc: List[int] = [len(fn.blocks)]
    push = acc.append
    for block in fn.blocks:
        push(id(block))
        push(len(block.instructions))
        for instr in block.instructions:
            push(id(instr))
            push(id(type(instr)))
            for operand in instr.operands:
                push(id(operand))
            if isinstance(instr, Branch):
                push(id(instr.then_block))
                push(id(instr.else_block))
            elif isinstance(instr, Jump):
                push(id(instr.target))
            elif isinstance(instr, Phi):
                for pred in instr.incoming_blocks:
                    push(id(pred))
            elif isinstance(instr, BinOp):
                push(hash(instr.op))
            elif isinstance(instr, Cmp):
                push(hash(instr.predicate))
            elif isinstance(instr, Cast):
                push(hash(instr.kind))
                push(id(instr.to_type))
            elif isinstance(instr, Alloca):
                push(id(instr.allocated_type))
    return (len(fn.blocks), len(acc), hash(tuple(acc)))


def decode_function(machine: Machine, fn: Function) -> DecodedFunction:
    """Return (building and caching on demand) the decoded code of
    ``fn`` for ``machine``.

    The structural fingerprint is O(instructions), and this function
    runs on every executed call instruction — so cached code is
    trusted within a decode epoch (advanced by every
    :meth:`Machine.spawn`, i.e. at run boundaries) and refingerprinted
    only when the epoch moved.  Mutating IR *while* it executes still
    requires :meth:`Machine.invalidate_decoded`, exactly as before.
    """
    code = machine._decoded_cache.get(fn)
    if code is not None and code.epoch == machine._decode_epoch:
        return code
    return _revalidate(machine, fn, code)


def _revalidate(machine: Machine, fn: Function,
                code) -> DecodedFunction:
    fp = _fingerprint(fn)
    if code is not None and code.fingerprint == fp:
        code.epoch = machine._decode_epoch
        return code
    code = _decode(machine, fn, fp)
    code.epoch = machine._decode_epoch
    cache = machine._decoded_cache
    cache[fn] = code
    cache.move_to_end(fn)
    while len(cache) > machine._decoded_cache_cap:
        cache.popitem(last=False)
    if machine.engine == "traced":
        from repro.ir.trace import annotate_decoded
        annotate_decoded(machine, code)
    return code


def _decode(machine: Machine, fn: Function,
            fp: Tuple[int, int]) -> DecodedFunction:
    block_ops: Dict[BasicBlock, OpList] = {}
    worklist: List[BasicBlock] = list(fn.blocks)
    for block in worklist:
        block_ops[block] = OpList()

    def ensure(block: BasicBlock) -> OpList:
        # Branch targets normally live in fn.blocks; tolerate foreign
        # blocks (hand-spliced IR) by decoding them into this code too.
        ops = block_ops.get(block)
        if ops is None:
            ops = block_ops[block] = OpList()
            worklist.append(block)
        return ops

    kinds_by_block: Dict[BasicBlock, List[str]] = {}
    i = 0
    while i < len(worklist):
        block = worklist[i]
        i += 1
        ops = block_ops[block]
        kinds = kinds_by_block.setdefault(block, [])
        for index, instr in enumerate(block.instructions):
            try:
                op = _compile_instruction(machine, block, index,
                                          instr, ensure)
            except Exception:
                # Anything the decoder cannot prove it handles runs on
                # the legacy path, faithfully by construction.
                op = _legacy_op(instr)
                kind = "solo"
            else:
                if isinstance(instr, _SEQUENTIAL):
                    kind = "seq"
                elif isinstance(instr, _TERMINAL):
                    kind = "term"
                elif isinstance(instr, Phi):
                    kind = "phi"
                else:
                    kind = "solo"  # Call / Ret / unknown
            ops.append(op)
            kinds.append(kind)
    for block, ops in block_ops.items():
        _build_burst(machine, ops, kinds_by_block.get(block, []))
    return DecodedFunction(fn, fp, block_ops)


def _build_burst(machine: Machine, ops: OpList,
                 kinds: List[str]) -> None:
    """Annotate ``ops`` with its fused straight-line runs (used only
    by :meth:`DecodedExecutionContext.run_burst`; single stepping
    always dispatches one closure per instruction)."""
    n = len(ops)
    ops.traces = None
    burst: List = [None] * n
    blen: List[int] = [1] * n
    for i in range(n):
        if kinds[i] == "phi":
            if i != 0:
                continue  # placeholder indices are never executed
            # The group op at index 0 executes ALL phis atomically
            # (one step) and jumps past the group — fuse it as the
            # head of the segment that follows the group.
            p = 0
            while p < n and kinds[p] == "phi":
                p += 1
            j = p
            while j < n and kinds[j] == "seq":
                j += 1
            if j < n and kinds[j] == "term":
                j += 1
            if j > p:
                burst[0] = _fuse(machine, [ops[0]] + list(ops[p:j]))
                blen[0] = 1 + (j - p)
            continue
        j = i
        while j < n and kinds[j] == "seq":
            j += 1
        if j < n and kinds[j] == "term":
            j += 1
        if j - i >= 2:
            burst[i] = _fuse(machine, ops[i:j])
            blen[i] = j - i
    ops.burst = burst
    ops.blen = blen


def _fuse(machine: Machine, seg: List[Op]):
    """One closure executing a straight-line run of pure ops.  Step
    counters update in a ``finally`` so they are exact even when an op
    faults partway through the run."""
    def fused(ctx, frame):
        n = 0
        try:
            for op in seg:
                op(ctx, frame)
                n += 1
        finally:
            if n:
                ctx.steps += n
                machine.total_steps += n
    return fused


def _legacy_op(instr: Instruction) -> Op:
    def op(ctx, frame):
        return ctx._execute(frame, instr)
    return op


# -- operand pre-resolution ------------------------------------------------------


def _raise_undef(ctx, frame, *registers):
    """Raise the legacy undefined-value fault for the first register
    in operand-evaluation order that is actually missing."""
    values = frame.values
    for register in registers:
        if register not in values:
            raise RuntimeFault(
                f"{ctx.name}: use of undefined value {register.short()} "
                f"in @{frame.function.name}")
    raise RuntimeFault(
        f"{ctx.name}: use of undefined value in @{frame.function.name}")


def _operand(machine: Machine, value: Value):
    """Pre-resolve one operand into ``(kind, payload)``.

    ``("const", v)``   — compile-time constant, capture ``v``;
    ``("reg", value)`` — an SSA register, read ``frame.values[value]``;
    ``("getter", fn)`` — resolved at execution time by
    ``fn(ctx, frame)`` (lazy string interning / function addresses,
    so memory allocation order matches the legacy engine exactly).
    """
    if isinstance(value, Constant):
        payload = value.value
        if isinstance(payload, str):
            text = payload

            def getter(ctx, frame):
                return machine.intern_string(text)
            return "getter", getter
        return "const", payload
    if isinstance(value, UndefValue):
        return "const", 0
    if isinstance(value, GlobalVariable):
        try:
            return "const", machine.global_address(value)
        except RuntimeFault:
            gv = value

            def getter(ctx, frame):
                return machine.global_address(gv)
            return "getter", getter
    if isinstance(value, Function):
        fn = value

        def getter(ctx, frame):
            return machine.function_address(fn)
        return "getter", getter
    return "reg", value


def _kind_getter(kind: str, payload):
    """Wrap a pre-resolved operand into an always-callable getter."""
    if kind == "const":
        captured = payload
        return lambda ctx, frame: captured
    if kind == "reg":
        register = payload

        def getter(ctx, frame):
            try:
                return frame.values[register]
            except KeyError:
                _raise_undef(ctx, frame, register)
        return getter
    return payload


def _getter(machine: Machine, value: Value):
    kind, payload = _operand(machine, value)
    return _kind_getter(kind, payload)


# -- pure-operation pre-compilation ----------------------------------------------

_CMP_BASE = {
    "eq": operator.eq, "ne": operator.ne,
    "lt": operator.lt, "le": operator.le,
    "gt": operator.gt, "ge": operator.ge,
}


def _compile_arith(instr: BinOp):
    """Compile a BinOp into ``fn(lhs, rhs)`` replicating the legacy
    ``_apply_binop`` semantics (coercions, wrapping, fault messages)."""
    op = instr.op
    if op[0] == "f":
        if op == "fadd":
            return lambda a, b: float(a) + float(b)
        if op == "fsub":
            return lambda a, b: float(a) - float(b)
        if op == "fmul":
            return lambda a, b: float(a) * float(b)

        def fdiv(a, b):
            a, b = float(a), float(b)
            if b == 0.0:
                raise RuntimeFault("float division by zero")
            return a / b
        return fdiv

    bits = instr.type.bits if isinstance(instr.type, IntType) else 64
    mask = (1 << bits) - 1
    sign = 1 << (bits - 1)
    mod = 1 << bits

    def wrap(r):
        r &= mask
        return r - mod if r >= sign else r

    m64 = _INT64_MASK
    if op == "add":
        return lambda a, b: wrap(int(a) + int(b))
    if op == "sub":
        return lambda a, b: wrap(int(a) - int(b))
    if op == "mul":
        return lambda a, b: wrap(int(a) * int(b))
    if op == "sdiv":
        def sdiv(a, b):
            a, b = int(a), int(b)
            if b == 0:
                raise RuntimeFault("integer division by zero")
            return wrap(_trunc_div(a, b))
        return sdiv
    if op == "udiv":
        def udiv(a, b):
            a, b = int(a), int(b)
            if b == 0:
                raise RuntimeFault("integer division by zero")
            return wrap((a & m64) // (b & m64))
        return udiv
    if op == "srem":
        def srem(a, b):
            a, b = int(a), int(b)
            if b == 0:
                raise RuntimeFault("integer remainder by zero")
            return wrap(a - _trunc_div(a, b) * b)
        return srem
    if op == "urem":
        def urem(a, b):
            a, b = int(a), int(b)
            if b == 0:
                raise RuntimeFault("integer remainder by zero")
            return wrap((a & m64) % (b & m64))
        return urem
    if op == "and":
        return lambda a, b: wrap(int(a) & int(b))
    if op == "or":
        return lambda a, b: wrap(int(a) | int(b))
    if op == "xor":
        return lambda a, b: wrap(int(a) ^ int(b))
    if op == "shl":
        return lambda a, b: wrap(int(a) << (int(b) & 63))
    if op == "lshr":
        return lambda a, b: wrap((int(a) & m64) >> (int(b) & 63))
    if op == "ashr":
        return lambda a, b: wrap(int(a) >> (int(b) & 63))
    raise RuntimeFault(f"unhandled binop {op}")


def _compile_cmp(instr: Cmp):
    pred = instr.predicate
    if pred[0] == "f":
        cmp = _CMP_BASE[pred[1:]]
        return lambda a, b: 1 if cmp(float(a), float(b)) else 0
    if pred[0] == "u":
        cmp = _CMP_BASE[pred[1:]]
        m64 = _INT64_MASK
        return lambda a, b: 1 if cmp(int(a) & m64, int(b) & m64) else 0
    if pred[0] == "s":
        pred = pred[1:]
    cmp = _CMP_BASE[pred]
    return lambda a, b: 1 if cmp(int(a), int(b)) else 0


# -- per-instruction compilation -------------------------------------------------


def _compile_instruction(machine: Machine, block: BasicBlock, index: int,
                         instr: Instruction, ensure) -> Op:
    nxt = index + 1

    if isinstance(instr, Phi):
        return _compile_phi(machine, block)

    if isinstance(instr, Alloca):
        size = instr.allocated_type.size_slots()
        label = f"alloca:{instr.name or 'tmp'}"

        def op(ctx, frame):
            addr = machine.memory.alloc(size, machine.stack_region(ctx),
                                        label)
            frame.values[instr] = addr
            frame.index = nxt
            return True
        return op

    if isinstance(instr, Load):
        return _compile_load(machine, instr, nxt)

    if isinstance(instr, Store):
        return _compile_store(machine, instr, nxt)

    if isinstance(instr, BinOp):
        return _compile_binop(machine, instr, nxt)

    if isinstance(instr, Cmp):
        return _compile_cmp_instr(machine, instr, nxt)

    if isinstance(instr, GEP):
        return _compile_gep(machine, instr, nxt)

    if isinstance(instr, Cast):
        return _compile_cast(machine, instr, nxt)

    if isinstance(instr, Select):
        true_get = _getter(machine, instr.true_value)
        false_get = _getter(machine, instr.false_value)
        ckind, cond = _operand(machine, instr.cond)
        if ckind == "reg":
            creg = cond

            def op(ctx, frame):
                try:
                    c = frame.values[creg]
                except KeyError:
                    _raise_undef(ctx, frame, creg)
                chosen = true_get if c else false_get
                frame.values[instr] = chosen(ctx, frame)
                frame.index = nxt
                return True
            return op
        cget = _kind_getter(ckind, cond)

        def op(ctx, frame):
            chosen = true_get if cget(ctx, frame) else false_get
            frame.values[instr] = chosen(ctx, frame)
            frame.index = nxt
            return True
        return op

    if isinstance(instr, Call):
        return _compile_call(machine, instr, nxt)

    if isinstance(instr, Branch):
        return _compile_branch(machine, instr, ensure)

    if isinstance(instr, Jump):
        target = instr.target
        target_ops = ensure(target)

        def op(ctx, frame):
            frame.prev_block = frame.block
            frame.block = target
            frame.ops = target_ops
            frame.index = 0
            return True
        return op

    if isinstance(instr, Ret):
        if instr.value is None:
            def op(ctx, frame):
                ctx._do_return(None)
                return True
            return op
        vkind, val = _operand(machine, instr.value)
        if vkind == "const":
            def op(ctx, frame):
                ctx._do_return(val)
                return True
            return op
        if vkind == "reg":
            vreg = val

            def op(ctx, frame):
                try:
                    result = frame.values[vreg]
                except KeyError:
                    _raise_undef(ctx, frame, vreg)
                ctx._do_return(result)
                return True
            return op
        vget = val

        def op(ctx, frame):
            ctx._do_return(vget(ctx, frame))
            return True
        return op

    if isinstance(instr, Unreachable):
        def op(ctx, frame):
            raise RuntimeFault(
                f"{ctx.name}: reached unreachable in "
                f"@{frame.function.name}")
        return op

    # Unknown instruction kinds execute (and fault) on the legacy path.
    return _legacy_op(instr)


def _compile_load(machine: Machine, instr: Load, nxt: int) -> Op:
    slots = machine.memory._slots
    pkind, ptr = _operand(machine, instr.ptr)
    if pkind == "reg":
        preg = ptr

        def op(ctx, frame):
            values = frame.values
            try:
                addr = values[preg]
            except KeyError:
                _raise_undef(ctx, frame, preg)
            if machine.access_policy is None and not machine.access_hooks:
                v = slots.get(addr, _UNMAPPED)
                if v is _UNMAPPED:
                    v = machine.mem_read(ctx, addr)  # precise fault
            else:
                v = machine.mem_read(ctx, addr)
            values[instr] = v
            frame.index = nxt
            return True
        return op
    if pkind == "const":
        addr_c = ptr

        def op(ctx, frame):
            if machine.access_policy is None and not machine.access_hooks:
                v = slots.get(addr_c, _UNMAPPED)
                if v is _UNMAPPED:
                    v = machine.mem_read(ctx, addr_c)
            else:
                v = machine.mem_read(ctx, addr_c)
            frame.values[instr] = v
            frame.index = nxt
            return True
        return op
    pget = ptr

    def op(ctx, frame):
        frame.values[instr] = machine.mem_read(ctx, pget(ctx, frame))
        frame.index = nxt
        return True
    return op


def _compile_store(machine: Machine, instr: Store, nxt: int) -> Op:
    slots = machine.memory._slots
    pkind, ptr = _operand(machine, instr.ptr)
    vkind, val = _operand(machine, instr.value)
    if pkind == "getter" or vkind == "getter":
        pget = _kind_getter(pkind, ptr)
        vget = _kind_getter(vkind, val)

        def op(ctx, frame):
            # Legacy order: resolve the pointer, then the stored value.
            addr = pget(ctx, frame)
            machine.mem_write(ctx, addr, vget(ctx, frame))
            frame.index = nxt
            return True
        return op

    if pkind == "reg" and vkind == "reg":
        preg, vreg = ptr, val

        def op(ctx, frame):
            values = frame.values
            try:
                addr = values[preg]
                v = values[vreg]
            except KeyError:
                _raise_undef(ctx, frame, preg, vreg)
            if machine.access_policy is None and not machine.access_hooks:
                if addr in slots:
                    slots[addr] = v
                else:
                    machine.mem_write(ctx, addr, v)  # precise fault
            else:
                machine.mem_write(ctx, addr, v)
            frame.index = nxt
            return True
        return op

    if pkind == "reg":
        preg, vc = ptr, val

        def op(ctx, frame):
            try:
                addr = frame.values[preg]
            except KeyError:
                _raise_undef(ctx, frame, preg)
            if machine.access_policy is None and not machine.access_hooks:
                if addr in slots:
                    slots[addr] = vc
                else:
                    machine.mem_write(ctx, addr, vc)
            else:
                machine.mem_write(ctx, addr, vc)
            frame.index = nxt
            return True
        return op

    if vkind == "reg":
        pc, vreg = ptr, val

        def op(ctx, frame):
            try:
                v = frame.values[vreg]
            except KeyError:
                _raise_undef(ctx, frame, vreg)
            if machine.access_policy is None and not machine.access_hooks:
                if pc in slots:
                    slots[pc] = v
                else:
                    machine.mem_write(ctx, pc, v)
            else:
                machine.mem_write(ctx, pc, v)
            frame.index = nxt
            return True
        return op

    pc, vc = ptr, val

    def op(ctx, frame):
        if machine.access_policy is None and not machine.access_hooks:
            if pc in slots:
                slots[pc] = vc
            else:
                machine.mem_write(ctx, pc, vc)
        else:
            machine.mem_write(ctx, pc, vc)
        frame.index = nxt
        return True
    return op


def _compile_binop(machine: Machine, instr: BinOp, nxt: int) -> Op:
    arith = _compile_arith(instr)
    lkind, lv = _operand(machine, instr.lhs)
    rkind, rv = _operand(machine, instr.rhs)

    if lkind == "const" and rkind == "const":
        try:
            folded = arith(lv, rv)
        except RuntimeFault as fault:
            message = str(fault)

            def op(ctx, frame):
                raise RuntimeFault(message)
            return op

        def op(ctx, frame):
            frame.values[instr] = folded
            frame.index = nxt
            return True
        return op

    if lkind == "getter" or rkind == "getter":
        lget = _kind_getter(lkind, lv)
        rget = _kind_getter(rkind, rv)

        def op(ctx, frame):
            frame.values[instr] = arith(lget(ctx, frame),
                                        rget(ctx, frame))
            frame.index = nxt
            return True
        return op

    op_name = instr.op
    if op_name in ("add", "sub", "mul"):
        # The loop-body workhorses: fully inlined, including the
        # wrap-to-width (identical to _apply_binop's coerce + wrap).
        bits = instr.type.bits if isinstance(instr.type, IntType) else 64
        mask = (1 << bits) - 1
        sign = 1 << (bits - 1)
        mod = 1 << bits
        if lkind == "reg" and rkind == "reg":
            lreg, rreg = lv, rv
            if op_name == "add":
                def op(ctx, frame):
                    values = frame.values
                    try:
                        r = (int(values[lreg]) + int(values[rreg])) & mask
                    except KeyError:
                        _raise_undef(ctx, frame, lreg, rreg)
                    values[instr] = r - mod if r >= sign else r
                    frame.index = nxt
                    return True
            elif op_name == "sub":
                def op(ctx, frame):
                    values = frame.values
                    try:
                        r = (int(values[lreg]) - int(values[rreg])) & mask
                    except KeyError:
                        _raise_undef(ctx, frame, lreg, rreg)
                    values[instr] = r - mod if r >= sign else r
                    frame.index = nxt
                    return True
            else:
                def op(ctx, frame):
                    values = frame.values
                    try:
                        r = (int(values[lreg]) * int(values[rreg])) & mask
                    except KeyError:
                        _raise_undef(ctx, frame, lreg, rreg)
                    values[instr] = r - mod if r >= sign else r
                    frame.index = nxt
                    return True
            return op
        if lkind == "reg":
            lreg, rc = lv, int(rv)
            if op_name == "add":
                def op(ctx, frame):
                    values = frame.values
                    try:
                        r = (int(values[lreg]) + rc) & mask
                    except KeyError:
                        _raise_undef(ctx, frame, lreg)
                    values[instr] = r - mod if r >= sign else r
                    frame.index = nxt
                    return True
            elif op_name == "sub":
                def op(ctx, frame):
                    values = frame.values
                    try:
                        r = (int(values[lreg]) - rc) & mask
                    except KeyError:
                        _raise_undef(ctx, frame, lreg)
                    values[instr] = r - mod if r >= sign else r
                    frame.index = nxt
                    return True
            else:
                def op(ctx, frame):
                    values = frame.values
                    try:
                        r = (int(values[lreg]) * rc) & mask
                    except KeyError:
                        _raise_undef(ctx, frame, lreg)
                    values[instr] = r - mod if r >= sign else r
                    frame.index = nxt
                    return True
            return op
        lc, rreg = int(lv), rv
        if op_name == "add":
            def op(ctx, frame):
                values = frame.values
                try:
                    r = (lc + int(values[rreg])) & mask
                except KeyError:
                    _raise_undef(ctx, frame, rreg)
                values[instr] = r - mod if r >= sign else r
                frame.index = nxt
                return True
        elif op_name == "sub":
            def op(ctx, frame):
                values = frame.values
                try:
                    r = (lc - int(values[rreg])) & mask
                except KeyError:
                    _raise_undef(ctx, frame, rreg)
                values[instr] = r - mod if r >= sign else r
                frame.index = nxt
                return True
        else:
            def op(ctx, frame):
                values = frame.values
                try:
                    r = (lc * int(values[rreg])) & mask
                except KeyError:
                    _raise_undef(ctx, frame, rreg)
                values[instr] = r - mod if r >= sign else r
                frame.index = nxt
                return True
        return op

    # Division / remainder / float / bitwise family: registers read
    # inline, the pre-compiled arith callable does the rest.
    if lkind == "reg" and rkind == "reg":
        lreg, rreg = lv, rv

        def op(ctx, frame):
            values = frame.values
            try:
                a = values[lreg]
                b = values[rreg]
            except KeyError:
                _raise_undef(ctx, frame, lreg, rreg)
            values[instr] = arith(a, b)
            frame.index = nxt
            return True
        return op
    if lkind == "reg":
        lreg, rc = lv, rv

        def op(ctx, frame):
            values = frame.values
            try:
                a = values[lreg]
            except KeyError:
                _raise_undef(ctx, frame, lreg)
            values[instr] = arith(a, rc)
            frame.index = nxt
            return True
        return op
    lc, rreg = lv, rv

    def op(ctx, frame):
        values = frame.values
        try:
            b = values[rreg]
        except KeyError:
            _raise_undef(ctx, frame, rreg)
        values[instr] = arith(lc, b)
        frame.index = nxt
        return True
    return op


def _compile_cmp_instr(machine: Machine, instr: Cmp, nxt: int) -> Op:
    compare = _compile_cmp(instr)
    lkind, lv = _operand(machine, instr.lhs)
    rkind, rv = _operand(machine, instr.rhs)

    if lkind == "const" and rkind == "const":
        folded = compare(lv, rv)

        def op(ctx, frame):
            frame.values[instr] = folded
            frame.index = nxt
            return True
        return op

    if lkind == "getter" or rkind == "getter":
        lget = _kind_getter(lkind, lv)
        rget = _kind_getter(rkind, rv)

        def op(ctx, frame):
            frame.values[instr] = compare(lget(ctx, frame),
                                          rget(ctx, frame))
            frame.index = nxt
            return True
        return op

    if lkind == "reg" and rkind == "reg":
        lreg, rreg = lv, rv

        def op(ctx, frame):
            values = frame.values
            try:
                a = values[lreg]
                b = values[rreg]
            except KeyError:
                _raise_undef(ctx, frame, lreg, rreg)
            values[instr] = compare(a, b)
            frame.index = nxt
            return True
        return op
    if lkind == "reg":
        lreg, rc = lv, rv

        def op(ctx, frame):
            values = frame.values
            try:
                a = values[lreg]
            except KeyError:
                _raise_undef(ctx, frame, lreg)
            values[instr] = compare(a, rc)
            frame.index = nxt
            return True
        return op
    lc, rreg = lv, rv

    def op(ctx, frame):
        values = frame.values
        try:
            b = values[rreg]
        except KeyError:
            _raise_undef(ctx, frame, rreg)
        values[instr] = compare(lc, b)
        frame.index = nxt
        return True
    return op


def _compile_branch(machine: Machine, instr: Branch, ensure) -> Op:
    then_block, else_block = instr.then_block, instr.else_block
    then_ops = ensure(then_block)
    else_ops = ensure(else_block)
    ckind, cond = _operand(machine, instr.cond)

    if ckind == "const":
        target = then_block if cond else else_block
        target_ops = then_ops if cond else else_ops

        def op(ctx, frame):
            frame.prev_block = frame.block
            frame.block = target
            frame.ops = target_ops
            frame.index = 0
            return True
        return op

    if ckind == "reg":
        creg = cond

        def op(ctx, frame):
            try:
                c = frame.values[creg]
            except KeyError:
                _raise_undef(ctx, frame, creg)
            frame.prev_block = frame.block
            if c:
                frame.block = then_block
                frame.ops = then_ops
            else:
                frame.block = else_block
                frame.ops = else_ops
            frame.index = 0
            return True
        return op

    cget = cond

    def op(ctx, frame):
        frame.prev_block = frame.block
        if cget(ctx, frame):
            frame.block = then_block
            frame.ops = then_ops
        else:
            frame.block = else_block
            frame.ops = else_ops
        frame.index = 0
        return True
    return op


def _compile_phi(machine: Machine, block: BasicBlock) -> Op:
    """One closure executes the whole phi group atomically, exactly
    like the legacy engine (reads first, then writes).

    Incomings are pre-tagged ``(kind, payload)`` so the hot loop-header
    case (register/constant incomings) never allocates a getter call.
    """
    phis = block.phis
    pairs = []
    for phi in phis:
        table = {}
        for value, pred in phi.incomings:
            if pred not in table:
                table[pred] = _operand(machine, value)
        pairs.append((phi, table))
    next_index = block.first_non_phi_index()

    def resolve(ctx, frame, values, phi, table):
        entry = table.get(frame.prev_block)
        if entry is None:
            raise IRError(
                f"phi {phi.short()} has no incoming for "
                f"{frame.prev_block}")
        kind, payload = entry
        if kind == "reg":
            try:
                return values[payload]
            except KeyError:
                _raise_undef(ctx, frame, payload)
        if kind == "const":
            return payload
        return payload(ctx, frame)

    if len(pairs) == 1:
        # A single phi needs no staging: one read, one write.
        phi0, table0 = pairs[0]

        def op(ctx, frame):
            values = frame.values
            entry = table0.get(frame.prev_block)
            if entry is None:
                resolve(ctx, frame, values, phi0, table0)  # raises
            kind, payload = entry
            if kind == "reg":
                try:
                    values[phi0] = values[payload]
                except KeyError:
                    _raise_undef(ctx, frame, payload)
            elif kind == "const":
                values[phi0] = payload
            else:
                values[phi0] = payload(ctx, frame)
            frame.index = next_index
            return True
        return op

    if len(pairs) == 2:
        (phi0, table0), (phi1, table1) = pairs

        def op(ctx, frame):
            values = frame.values
            prev = frame.prev_block
            e0 = table0.get(prev)
            e1 = table1.get(prev)
            if e0 is None or e1 is None:
                # Missing incoming: fall back for the exact IRError.
                a = resolve(ctx, frame, values, phi0, table0)
                b = resolve(ctx, frame, values, phi1, table1)
            else:
                k0, p0 = e0
                if k0 == "reg":
                    try:
                        a = values[p0]
                    except KeyError:
                        _raise_undef(ctx, frame, p0)
                elif k0 == "const":
                    a = p0
                else:
                    a = p0(ctx, frame)
                k1, p1 = e1
                if k1 == "reg":
                    try:
                        b = values[p1]
                    except KeyError:
                        _raise_undef(ctx, frame, p1)
                elif k1 == "const":
                    b = p1
                else:
                    b = p1(ctx, frame)
            values[phi0] = a
            values[phi1] = b
            frame.index = next_index
            return True
        return op

    def op(ctx, frame):
        values = frame.values
        staged = [resolve(ctx, frame, values, phi, table)
                  for phi, table in pairs]
        for (phi, _table), value in zip(pairs, staged):
            values[phi] = value
        frame.index = next_index
        return True
    return op


def _compile_gep(machine: Machine, instr: GEP, nxt: int) -> Op:
    bkind, base = _operand(machine, instr.ptr)
    current = instr.ptr.type.pointee
    indices = instr.indices

    static = 0
    dynamic: List[Tuple[str, object, int]] = []

    lkind, lead = _operand(machine, indices[0])
    if lkind == "const":
        static += int(lead) * current.size_slots()
    else:
        dynamic.append((lkind, lead, current.size_slots()))

    for idx in indices[1:]:
        if isinstance(current, StructType):
            if not isinstance(idx, Constant):
                # Dynamic struct index cannot be pre-flattened; the
                # legacy interpreter handles it (and its faults).
                return _legacy_op(instr)
            field = int(idx.value)
            static += current.field_offset_slots(field)
            current = current.fields[field].type
        elif isinstance(current, ArrayType):
            element_size = current.element.size_slots()
            ikind, ival = _operand(machine, idx)
            if ikind == "const":
                static += int(ival) * element_size
            else:
                dynamic.append((ikind, ival, element_size))
            current = current.element
        else:
            return _legacy_op(instr)  # "gep into scalar type" fault

    if not dynamic:
        if bkind == "const":
            addr = base + static

            def op(ctx, frame):
                frame.values[instr] = addr
                frame.index = nxt
                return True
            return op
        if bkind == "reg":
            breg = base

            def op(ctx, frame):
                values = frame.values
                try:
                    a = values[breg]
                except KeyError:
                    _raise_undef(ctx, frame, breg)
                values[instr] = a + static
                frame.index = nxt
                return True
            return op
        bget = base

        def op(ctx, frame):
            frame.values[instr] = bget(ctx, frame) + static
            frame.index = nxt
            return True
        return op

    if len(dynamic) == 1 and dynamic[0][0] == "reg":
        _kind, ireg, scale = dynamic[0]
        if bkind == "const":
            offset = base + static

            def op(ctx, frame):
                values = frame.values
                try:
                    i = values[ireg]
                except KeyError:
                    _raise_undef(ctx, frame, ireg)
                values[instr] = offset + int(i) * scale
                frame.index = nxt
                return True
            return op
        if bkind == "reg":
            breg = base

            def op(ctx, frame):
                values = frame.values
                try:
                    a = values[breg]
                    i = values[ireg]
                except KeyError:
                    _raise_undef(ctx, frame, breg, ireg)
                values[instr] = a + static + int(i) * scale
                frame.index = nxt
                return True
            return op

    bget = _kind_getter(bkind, base)
    getters = [(_kind_getter(k, v), scale) for k, v, scale in dynamic]

    def op(ctx, frame):
        addr = bget(ctx, frame) + static
        for getter, scale in getters:
            addr += int(getter(ctx, frame)) * scale
        frame.values[instr] = addr
        frame.index = nxt
        return True
    return op


def _compile_cast(machine: Machine, instr: Cast, nxt: int) -> Op:
    kind = instr.kind
    vkind, val = _operand(machine, instr.value)

    if kind in ("bitcast", "inttoptr", "ptrtoint"):
        convert = None
    elif kind == "trunc":
        bits = instr.to_type.bits  # type: ignore[attr-defined]
        mask = (1 << bits) - 1
        sign = 1 << (bits - 1)
        mod = 1 << bits

        def convert(v):
            v = int(v) & mask
            return v - mod if v >= sign else v
    elif kind in ("zext", "sext", "fptosi"):
        convert = int
    elif kind == "sitofp":
        convert = float
    else:
        return _legacy_op(instr)  # "unhandled cast" fault

    if vkind == "const":
        folded = val if convert is None else convert(val)

        def op(ctx, frame):
            frame.values[instr] = folded
            frame.index = nxt
            return True
        return op
    if vkind == "reg":
        vreg = val
        if convert is None:
            def op(ctx, frame):
                values = frame.values
                try:
                    v = values[vreg]
                except KeyError:
                    _raise_undef(ctx, frame, vreg)
                values[instr] = v
                frame.index = nxt
                return True
            return op

        def op(ctx, frame):
            values = frame.values
            try:
                v = values[vreg]
            except KeyError:
                _raise_undef(ctx, frame, vreg)
            values[instr] = convert(v)
            frame.index = nxt
            return True
        return op
    vget = val
    if convert is None:
        def op(ctx, frame):
            frame.values[instr] = vget(ctx, frame)
            frame.index = nxt
            return True
        return op

    def op(ctx, frame):
        frame.values[instr] = convert(vget(ctx, frame))
        frame.index = nxt
        return True
    return op


def _compile_call(machine: Machine, instr: Call, nxt: int) -> Op:
    callee = instr.callee
    arg_getters = [_getter(machine, arg) for arg in instr.args]
    is_void = instr.is_void

    if not isinstance(callee, Function):
        # Indirect call: resolve through the legacy path (it goes
        # through our overridden _push_call, so pushed frames are
        # still decoded).
        return _legacy_op(instr)

    # A declaration may be satisfied by a definition from another
    # loaded module; the name map is fixed at machine load time, so
    # resolve once here instead of on every call.
    resolved = callee
    if resolved.is_declaration:
        defined = machine._functions_by_name.get(resolved.name)
        if defined is not None and not defined.is_declaration:
            resolved = defined

    if resolved.is_declaration:
        name = resolved.name

        def op(ctx, frame):
            args = [g(ctx, frame) for g in arg_getters]
            handler = machine.externals.get(name)
            if handler is None:
                raise RuntimeFault(
                    f"{ctx.name}: call to unknown external @{name}")
            result = handler(machine, ctx, args)
            if result is BLOCK:
                machine.blocked_steps += 1
                return False
            if isinstance(result, PushCall):
                ctx._push_call(result.function, result.args,
                               call_site=instr if not result.replay
                               else None,
                               replay=result.replay)
                if result.on_return is not None:
                    ctx.stack[-1].on_return = result.on_return
                return True
            if not is_void:
                frame.values[instr] = result
            frame.index = nxt
            return True
        return op

    formals = list(resolved.args)
    if len(arg_getters) != len(formals):
        fname, given, expected = resolved.name, len(arg_getters), \
            len(formals)

        def op(ctx, frame):
            for g in arg_getters:   # legacy resolves args first
                g(ctx, frame)
            raise RuntimeFault(
                f"@{fname} called with {given} args, "
                f"expects {expected}")
        return op

    target = resolved

    def op(ctx, frame):
        args = [g(ctx, frame) for g in arg_getters]
        new_frame = Frame(target, instr, False)
        new_frame.values = dict(zip(formals, args))
        new_frame.ops = decode_function(machine, target).entry_ops
        ctx.stack.append(new_frame)
        return True
    return op


# -- the decoded execution context ----------------------------------------------


class DecodedExecutionContext(ExecutionContext):
    """An :class:`ExecutionContext` that dispatches pre-decoded
    closures: fetch ``frame.ops[frame.index]``, call it.  Everything
    else (call stack, returns, trampolines, blocking) is inherited."""

    def _push_call(self, function: Function, args,
                   call_site, replay: bool = False) -> None:
        super()._push_call(function, args, call_site, replay)
        frame = self.stack[-1]
        frame.ops = decode_function(self.machine, function).entry_ops

    def _attach_ops(self, frame):
        """A frame pushed behind the engine's back (hand-built state):
        attach decoded code; None means fall back to legacy."""
        code = decode_function(self.machine, frame.function)
        ops = frame.ops = code.block_ops.get(frame.block)
        return ops

    def step(self) -> None:
        """Execute one instruction (or retry a blocked external call)."""
        if self.finished or not self.stack:
            return
        frame = self.stack[-1]
        ops = frame.ops
        if ops is None:
            ops = self._attach_ops(frame)
            if ops is None:
                super().step()
                return
        try:
            advanced = ops[frame.index](self, frame)
        except RuntimeFault:
            self.finished = True
            raise
        except IndexError:
            if frame.index >= len(ops):
                raise RuntimeFault(
                    f"{self.name}: fell off block {frame.block.name} in "
                    f"@{frame.function.name}") from None
            raise
        if advanced:
            self.steps += 1
            self.machine.total_steps += 1

    def run_burst(self, limit: int, contexts) -> Tuple[int, bool]:
        """Inlined step loop (see :meth:`ExecutionContext.run_burst`):
        same step sequence, without the per-step method dispatch.
        Straight-line runs of pure ops execute through their fused
        closure — one dispatch per run instead of per instruction
        (fused runs cannot block, spawn, or cross a frame boundary,
        so this is unobservable apart from speed)."""
        machine = self.machine
        stack = self.stack
        tracer = machine.tracer
        t0 = tracer.now_us() if tracer is not None else 0.0
        start_steps = self.steps
        n_ctx = len(contexts)
        attempts = 0
        advanced_any = False
        while attempts < limit:
            if self.finished or not stack:
                break
            frame = stack[-1]
            ops = frame.ops
            if ops is None:
                ops = self._attach_ops(frame)
                if ops is None:
                    before = self.steps
                    attempts += 1
                    ExecutionContext.step(self)
                    if self.steps == before:
                        break
                    advanced_any = True
                    if len(contexts) != n_ctx:
                        break
                    continue
            index = frame.index
            try:
                fused = ops.burst[index]
                if fused is not None and \
                        ops.blen[index] <= limit - attempts:
                    # Trace loop: a fused run cannot block, spawn,
                    # finish a frame or fault-free change the stack,
                    # so while the next index is fused too (the hot
                    # loop case) chain the runs without re-checking
                    # any of that.
                    before = self.steps
                    while True:
                        fused(self, frame)
                        ops = frame.ops
                        index = frame.index
                        fused = ops.burst[index]
                        if fused is None or ops.blen[index] > \
                                limit - attempts - (self.steps - before):
                            break
                    attempts += self.steps - before
                    advanced_any = True
                    continue
                advanced = ops[index](self, frame)
            except RuntimeFault:
                self.finished = True
                raise
            except IndexError:
                if index >= len(ops):
                    raise RuntimeFault(
                        f"{self.name}: fell off block {frame.block.name} "
                        f"in @{frame.function.name}") from None
                raise
            attempts += 1
            if advanced:
                self.steps += 1
                machine.total_steps += 1
                advanced_any = True
            else:
                break
            if len(contexts) != n_ctx:
                break
        if tracer is not None and self.steps > start_steps:
            tracer.step_burst(self.name, self.mode,
                              self.steps - start_steps, t0)
        return attempts, advanced_any
