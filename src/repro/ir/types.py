"""IR types, including the secure-type ``color`` qualifier.

A type may carry a *color*: the name of the enclave the value lives in
(paper §1).  ``color=None`` means "uncolored" — the element will take
one of the initial colors of Table 2 (F for registers, U or S for
memory locations) at analysis time.

Rule 4 of the paper's confidentiality rules states that a pointer to a
``C`` memory location is itself ``C``; we therefore never color a
:class:`PointerType` directly — a pointer's color is *derived* from
its pointee (see :func:`pointer_color`).

Types are immutable and hashable so they can be shared freely between
modules and used as dictionary keys by the analyses.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import IRError


class IRType:
    """Base class of all IR types."""

    #: Optional secure-type color ("blue", "red", ...), or None.
    color: Optional[str] = None

    def size_slots(self) -> int:
        """Size of a value of this type in interpreter memory slots.

        The interpreter uses a slot-granular memory model: one slot per
        scalar (int, float or pointer).  Aggregates are laid out as the
        concatenation of their members, exactly like LLVM's flat layout
        but without padding.
        """
        raise NotImplementedError

    def with_color(self, color: Optional[str]) -> "IRType":
        """Return a copy of this type carrying ``color``."""
        raise IRError(f"type {self} cannot carry a color")

    def strip_color(self) -> "IRType":
        """Return this type without any color qualifier (recursively
        for pointers, shallowly otherwise)."""
        return self.with_color(None) if self.color is not None else self

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    def __eq__(self, other) -> bool:
        return isinstance(other, IRType) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def _key(self) -> tuple:
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)


class VoidType(IRType):
    """The type of instructions that produce no value."""

    def size_slots(self) -> int:
        return 0

    def _key(self) -> tuple:
        return ("void",)

    def __str__(self) -> str:
        return "void"


class IntType(IRType):
    """An integer of a given bit width (i1, i8, i32, i64...)."""

    def __init__(self, bits: int, color: Optional[str] = None):
        if bits <= 0:
            raise IRError(f"invalid integer width {bits}")
        self.bits = bits
        self.color = color

    def size_slots(self) -> int:
        return 1

    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    def with_color(self, color: Optional[str]) -> "IntType":
        return IntType(self.bits, color)

    def _key(self) -> tuple:
        return ("int", self.bits, self.color)

    def __str__(self) -> str:
        base = f"i{self.bits}"
        return f"{base} color({self.color})" if self.color else base


class FloatType(IRType):
    """An IEEE float of a given bit width (f32 or f64)."""

    def __init__(self, bits: int = 64, color: Optional[str] = None):
        if bits not in (32, 64):
            raise IRError(f"invalid float width {bits}")
        self.bits = bits
        self.color = color

    def size_slots(self) -> int:
        return 1

    def size_bytes(self) -> int:
        return self.bits // 8

    def with_color(self, color: Optional[str]) -> "FloatType":
        return FloatType(self.bits, color)

    def _key(self) -> tuple:
        return ("float", self.bits, self.color)

    def __str__(self) -> str:
        base = f"f{self.bits}"
        return f"{base} color({self.color})" if self.color else base


class PointerType(IRType):
    """A pointer to a value of type ``pointee``.

    Pointers never carry their own color: per the paper's fourth
    confidentiality rule, the color of a pointer is the color of the
    memory it points to (see :func:`pointer_color`).
    """

    def __init__(self, pointee: IRType):
        self.pointee = pointee

    def size_slots(self) -> int:
        return 1

    def size_bytes(self) -> int:
        return 8

    def with_color(self, color: Optional[str]) -> "PointerType":
        if color is not None:
            raise IRError("pointers derive their color from their pointee")
        return self

    def strip_color(self) -> "PointerType":
        stripped = self.pointee.strip_color()
        return self if stripped is self.pointee else PointerType(stripped)

    def _key(self) -> tuple:
        return ("ptr", self.pointee._key())

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(IRType):
    """A fixed-size array ``[count x element]``."""

    def __init__(self, element: IRType, count: int):
        if count < 0:
            raise IRError(f"invalid array count {count}")
        self.element = element
        self.count = count

    @property
    def color(self) -> Optional[str]:  # type: ignore[override]
        return self.element.color

    def size_slots(self) -> int:
        return self.element.size_slots() * self.count

    def with_color(self, color: Optional[str]) -> "ArrayType":
        return ArrayType(self.element.with_color(color), self.count)

    def strip_color(self) -> "ArrayType":
        stripped = self.element.strip_color()
        return self if stripped is self.element else ArrayType(stripped, self.count)

    def _key(self) -> tuple:
        return ("array", self.element._key(), self.count)

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class StructField:
    """A named struct field; its type may carry a color (paper Fig 1)."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: IRType):
        self.name = name
        self.type = type

    @property
    def color(self) -> Optional[str]:
        return self.type.color

    def _key(self) -> tuple:
        return (self.name, self.type._key())

    def __repr__(self) -> str:
        return f"StructField({self.name!r}, {self.type})"


class StructType(IRType):
    """A named structure type with ordered fields.

    Struct types are the unit on which the developer expresses
    multi-color data (Figure 1 of the paper: a blue ``name`` field and
    a red ``balance`` field in the same ``account`` struct).
    """

    def __init__(self, name: str, fields: Sequence[StructField] = ()):
        self.name = name
        self.fields: Tuple[StructField, ...] = tuple(fields)

    def set_body(self, fields: Sequence[StructField]) -> None:
        """Fill in the fields of a forward-declared struct."""
        self.fields = tuple(fields)

    def field_index(self, name: str) -> int:
        for i, field in enumerate(self.fields):
            if field.name == name:
                return i
        raise IRError(f"struct {self.name} has no field {name!r}")

    def field_offset_slots(self, index: int) -> int:
        if not 0 <= index < len(self.fields):
            raise IRError(
                f"struct {self.name} has no field index {index}")
        return sum(f.type.size_slots() for f in self.fields[:index])

    def colors_used(self) -> Tuple[str, ...]:
        """The distinct explicit colors of the fields, in field order."""
        seen = []
        for field in self.fields:
            if field.color is not None and field.color not in seen:
                seen.append(field.color)
        return tuple(seen)

    @property
    def is_multicolor(self) -> bool:
        """True when fields carry at least two distinct explicit colors
        (the §7.2 case requiring field indirection)."""
        return len(self.colors_used()) >= 2

    def size_slots(self) -> int:
        return sum(f.type.size_slots() for f in self.fields)

    def _key(self) -> tuple:
        # Struct identity is nominal, like LLVM named structs.
        return ("struct", self.name)

    def __str__(self) -> str:
        return f"%{self.name}"


class FunctionType(IRType):
    """The type of a function: return type and parameter types."""

    def __init__(self, ret: IRType, params: Sequence[IRType] = (),
                 vararg: bool = False):
        self.ret = ret
        self.params: Tuple[IRType, ...] = tuple(params)
        self.vararg = vararg

    def size_slots(self) -> int:
        return 1  # a function value is a code pointer

    def _key(self) -> tuple:
        return ("fn", self.ret._key(),
                tuple(p._key() for p in self.params), self.vararg)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.vararg:
            params = f"{params}, ..." if params else "..."
        return f"{self.ret} ({params})"


def register_type(value_type: IRType) -> IRType:
    """The type a register holding a value of ``value_type`` gets.

    Scalar registers drop the color qualifier — register colors are
    tracked by the analysis, not by the type.  Pointer registers keep
    their pointee colors: the pointee color *is* the secure type the
    analysis reads (paper's fourth confidentiality rule).
    """
    if isinstance(value_type, PointerType):
        return value_type
    return value_type.strip_color()


def pointer_color(ptr_type: IRType) -> Optional[str]:
    """The color of a pointer, i.e. the color of its pointee.

    Implements the paper's fourth confidentiality rule: *if a pointer p
    points to a C memory location, p is itself C*.
    """
    if not isinstance(ptr_type, PointerType):
        raise IRError(f"pointer_color applied to non-pointer {ptr_type}")
    return ptr_type.pointee.color


# Common singletons.  These are uncolored; call ``with_color`` to get a
# colored variant.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)
