"""Control-flow-graph analyses: orderings, dominators, postdominators
and dominance frontiers.

Dominators use the Cooper–Harvey–Kennedy iterative algorithm.  The
dominance frontier feeds phi placement in ``mem2reg`` (paper §5.1);
the *post*dominator tree feeds the implicit-indirect-leak block
coloring of Rule 4 (paper §6.1.1): the blocks influenced by a
conditional branch are those between the branch and its immediate
postdominator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.module import BasicBlock, Function


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry block."""
    visited: Set[BasicBlock] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        visited.add(block)
        for succ in block.successors:
            if succ not in visited:
                visit(succ)
        order.append(block)

    if fn.blocks:
        visit(fn.entry_block)
    order.reverse()
    return order


def reachable_blocks(fn: Function) -> Set[BasicBlock]:
    return set(reverse_postorder(fn))


class DominatorTree:
    """Immediate-dominator tree of a function's CFG.

    With ``post=True``, computes *post*dominators on the reversed CFG.
    Functions may have several exit blocks; postdominance uses a
    virtual exit (represented by ``None``) joining them.
    """

    def __init__(self, fn: Function, post: bool = False):
        self.fn = fn
        self.post = post
        #: immediate dominator of each block (None for root / virtual exit)
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()

    # -- construction -----------------------------------------------------------

    def _preds(self, block: BasicBlock) -> List[BasicBlock]:
        return block.successors if self.post else block.predecessors

    def _succs(self, block: BasicBlock) -> List[BasicBlock]:
        return block.predecessors if self.post else block.successors

    def _roots(self) -> List[BasicBlock]:
        if not self.post:
            return [self.fn.entry_block]
        return [b for b in self.fn.blocks
                if not b.successors and b.is_terminated]

    #: Virtual super-root joining multiple (post)dominator roots —
    #: functions with several exit blocks postdominate to it.
    _VIRTUAL = "<virtual-root>"

    def _compute(self) -> None:
        if not self.fn.blocks:
            return
        order = self._order()
        index = {b: i for i, b in enumerate(order)}
        index[self._VIRTUAL] = -1
        roots = [r for r in self._roots() if r in index]
        idom: Dict[object, object] = {self._VIRTUAL: self._VIRTUAL}
        for r in roots:
            idom[r] = self._VIRTUAL

        changed = True
        while changed:
            changed = False
            for block in order:
                if block in roots:
                    continue
                preds = [p for p in self._preds(block) if p in idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = self._intersect(p, new_idom, idom, index)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        self.idom = {
            b: (None if d is self._VIRTUAL or b in roots else d)
            for b, d in idom.items() if b is not self._VIRTUAL}

    def _order(self) -> List[BasicBlock]:
        """Reverse postorder of the (possibly reversed) CFG over all
        blocks reachable from the roots."""
        visited: Set[BasicBlock] = set()
        order: List[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            visited.add(block)
            for nxt in self._succs(block):
                if nxt not in visited:
                    visit(nxt)
            order.append(block)

        for root in self._roots():
            if root not in visited:
                visit(root)
        order.reverse()
        return order

    @staticmethod
    def _intersect(a, b, idom, index):
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    # -- queries -----------------------------------------------------------------

    def immediate(self, block: BasicBlock) -> Optional[BasicBlock]:
        """The immediate (post)dominator of ``block``; None at a root."""
        return self.idom.get(block)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` (post)dominates ``b`` (reflexive)."""
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = self.idom.get(node)
        return False

    def frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Dominance frontier of every block (Cytron et al.)."""
        df: Dict[BasicBlock, Set[BasicBlock]] = {
            b: set() for b in self.idom}
        for block in self.idom:
            preds = [p for p in self._preds(block) if p in self.idom]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not self.idom[block]:
                    df[runner].add(block)
                    runner = self.idom.get(runner)
        return df


def blocks_influenced_by(branch_block: BasicBlock,
                         pdt: DominatorTree) -> Set[BasicBlock]:
    """Blocks control-dependent on the conditional branch terminating
    ``branch_block``: every block on a path from the branch to (but
    excluding) the branch block's immediate postdominator.

    This is the region to which Rule 4 of the paper propagates the
    branch condition's color (the "if" and "then" branches of §6.1.1,
    but not the joining point).
    """
    join = pdt.immediate(branch_block)
    influenced: Set[BasicBlock] = set()
    work = [s for s in branch_block.successors if s is not join]
    while work:
        block = work.pop()
        if block in influenced or block is join or block is branch_block:
            continue
        influenced.add(block)
        for succ in block.successors:
            if succ is not join:
                work.append(succ)
    return influenced
