"""Trace/superinstruction tier on top of the pre-decoded engine.

The decoded engine (:mod:`repro.ir.engine`) dispatches one Python
closure per instruction (fused into straight-line runs for bursts),
so a hot loop still pays a closure call, a ``frame.values`` dict read
per operand and a dict write per result, every iteration.  This
module compiles hot *loop regions* into one generated Python function
each — a superinstruction: SSA registers become Python locals, the
loop back-edge becomes a real ``while`` loop, and operand traffic is
folded away entirely.  The result runs an order of magnitude fewer
Python-level operations per interpreted step.

Region selection
----------------
:func:`plan_function` finds natural loops whose body is a single
straight-line chain of blocks (header + blocks linked by jumps, and
branches whose other arm leaves the loop), using dominators and
reverse-postorder from the shared
:class:`repro.pipeline.analyses.AnalysisCache` — the same analyses
the pass pipeline uses.  Chains containing calls, returns, foreign
instruction kinds or mid-loop joins are left to the decoded tier.
The ``trace-compile`` pipeline pass precomputes plans at compile
time; the machine replans lazily when a function was never through
the pipeline (or mutated since).

Compilation is staged behind runtime hit counters: a planned region
head counts (budget-weighted) entries and is compiled once its
estimated iteration count crosses ``REPRO_TRACE_THRESHOLD``
(default :data:`DEFAULT_THRESHOLD`).

Guards and deopt
----------------
A compiled trace runs only when every entry guard passes, and
returns **0 having executed nothing** otherwise, so the decoded
engine — which reproduces every fault message and step count exactly
— takes over mid-program with no state to repair:

* structural guard: traces hang off the decoded code object, which is
  fingerprint-revalidated (see :func:`repro.ir.engine._fingerprint`);
  mutated IR drops the trace with the stale closures;
* frame-shape guard: live-in registers are fetched with
  ``values.get`` — a missing register deopts (the decoded engine then
  raises the exact undefined-value fault);
* predecessor guard: the header's phi dispatch only knows the
  predecessors seen at compile time — anything else deopts;
* step-budget guard: an iteration is only entered with full headroom
  (``limit - n >= steps_per_iteration``), so a trace can never
  overshoot a burst/watchdog budget; partial iterations run decoded;
* channel guard: a context parked on a channel
  (``ctx.privagic_parked``) never enters a trace.

Mid-trace exits (the loop's conditional exit, or budget exhaustion)
write the carried locals back to ``frame.values`` positionally — the
defs executed so far this iteration plus the header phis — and set
``frame.block``/``frame.ops``/``frame.index``/``frame.prev_block``
exactly as the decoded terminator would have.  Step counters update
in a ``finally`` and pending counts are flushed before every
fault-capable operation (memory access, division, operand getters),
so ``ctx.steps``/``machine.total_steps`` match the decoded engine
exactly even when an op faults mid-trace.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.errors import RuntimeFault
from repro.ir.engine import (
    DecodedExecutionContext,
    DecodedFunction,
    _operand,
)
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Cast,
    Cmp,
    GEP,
    Instruction,
    Jump,
    Load,
    Phi,
    Select,
    Store,
)
from repro.ir.interp import _INT64_MASK, _trunc_div, ExecutionContext, Machine
from repro.ir.module import BasicBlock, Function
from repro.ir.types import ArrayType, IntType, StructType
from repro.ir.values import Constant, UndefValue, Value
from repro.pipeline.analyses import AnalysisCache

#: Default hot threshold: estimated loop iterations observed at a
#: region head before it is compiled.  ``REPRO_TRACE_THRESHOLD``
#: overrides (0 compiles on first entry).
DEFAULT_THRESHOLD = 64


def trace_threshold() -> int:
    raw = os.environ.get("REPRO_TRACE_THRESHOLD")
    if raw is None:
        return DEFAULT_THRESHOLD
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_THRESHOLD


class _Untraceable(Exception):
    """Raised by the region compiler when an instruction cannot be
    soundly inlined; the region is permanently left to the decoded
    tier."""


# -- region planning -------------------------------------------------------------


#: Instruction kinds the region compiler can inline.
_BODY = (Alloca, Load, Store, BinOp, Cmp, GEP, Cast, Select)


def _block_traceable(block: BasicBlock, is_head: bool) -> bool:
    instrs = block.instructions
    if not instrs:
        return False
    in_phis = True
    for instr in instrs[:-1]:
        if isinstance(instr, Phi):
            if not (is_head and in_phis):
                return False
            continue
        in_phis = False
        if not isinstance(instr, _BODY):
            return False
    return isinstance(instrs[-1], (Jump, Branch))


def _straight_chain(head: BasicBlock,
                    loop: set) -> Optional[List[BasicBlock]]:
    """The unique straight-line path head -> ... -> head inside
    ``loop``, or None if the loop body branches internally (or
    contains untraceable instructions)."""
    chain = [head]
    cur = head
    while True:
        if not _block_traceable(cur, cur is head):
            return None
        term = cur.instructions[-1]
        if isinstance(term, Jump):
            nxt = term.target
        else:  # Branch (checked by _block_traceable)
            then_in = term.then_block in loop
            else_in = term.else_block in loop
            if then_in == else_in:
                return None  # diamond in the loop, or no back path
            nxt = term.then_block if then_in else term.else_block
        if nxt is head:
            return chain
        if nxt not in loop or nxt in chain:
            return None
        chain.append(nxt)
        cur = nxt


def plan_function(fn: Function,
                  analysis: AnalysisCache) -> Tuple[Tuple[BasicBlock, ...],
                                                    ...]:
    """All compilable loop regions of ``fn``, as block chains starting
    at the loop header."""
    if not fn.blocks:
        return ()
    try:
        dom = analysis.dominators(fn)
        order = analysis.reverse_postorder(fn)
    except Exception:
        return ()
    regions: List[Tuple[BasicBlock, ...]] = []
    claimed: set = set()
    for head in order:
        if head in claimed:
            continue
        try:
            backs = [p for p in head.predecessors
                     if dom.dominates(head, p)]
        except Exception:
            continue  # unreachable predecessors etc.
        if not backs:
            continue
        loop = {head}
        stack = list(backs)
        while stack:
            b = stack.pop()
            if b in loop:
                continue
            loop.add(b)
            stack.extend(b.predecessors)
        chain = _straight_chain(head, loop)
        if chain is None:
            continue
        regions.append(tuple(chain))
        claimed.update(chain)
    return tuple(regions)


def region_steps(region: Tuple[BasicBlock, ...]) -> int:
    """Interpreter steps of one full iteration of ``region`` (a phi
    group costs one step regardless of width, like both engines)."""
    head = region[0]
    n_phis = sum(1 for i in head.instructions if isinstance(i, Phi))
    steps = 0
    for block in region:
        steps += len(block.instructions)
    if n_phis:
        steps -= n_phis - 1
    return steps


# -- runtime annotation ----------------------------------------------------------


def _machine_analysis(machine: Machine) -> AnalysisCache:
    cache = getattr(machine, "_trace_analysis", None)
    if cache is None:
        cache = machine._trace_analysis = AnalysisCache()
    return cache


def annotate_decoded(machine: Machine, code: DecodedFunction) -> None:
    """Attach :class:`TraceEntry` hooks for every planned region of
    ``code`` (called by ``decode_function`` on traced machines).

    Prefers the plan the ``trace-compile`` pipeline pass stored on the
    function — but only when its structural fingerprint still matches,
    i.e. the IR did not change since the pass ran; otherwise replans
    against the current IR through the machine's own
    :class:`AnalysisCache`.
    """
    fn = code.function
    plan = None
    if getattr(fn, "_trace_plan_fp", None) == code.fingerprint:
        plan = getattr(fn, "_trace_plan", None)
    if plan is None:
        analysis = _machine_analysis(machine)
        analysis.invalidate(fn)
        plan = plan_function(fn, analysis)
    for region in plan:
        head_ops = code.block_ops.get(region[0])
        if head_ops is not None:
            head_ops.traces = TraceEntry(machine, code, region, head_ops)


class TraceEntry:
    """Per-region runtime state: hit counting, the compiled
    superinstruction, and deopt bookkeeping."""

    __slots__ = ("machine", "code", "region", "head_ops", "count",
                 "threshold", "steps_per_iter", "compiled")

    def __init__(self, machine: Machine, code: DecodedFunction,
                 region: Tuple[BasicBlock, ...], head_ops) -> None:
        self.machine = machine
        self.code = code
        self.region = region
        self.head_ops = head_ops
        self.count = 0
        self.threshold = trace_threshold()
        self.steps_per_iter = max(1, region_steps(region))
        self.compiled = None

    def enter(self, ctx, frame, budget: int) -> int:
        """Run the trace if hot and the guards pass; returns executed
        steps (0 = deopt / still warming, nothing happened)."""
        trace = self.compiled
        machine = self.machine
        if trace is None:
            # Hit counting is budget-weighted: a single huge burst
            # (Machine.run with one context) enters this hook once
            # but would run the loop thousands of iterations decoded,
            # so count estimated iterations, not entries.
            self.count += max(1, budget // self.steps_per_iter)
            if self.count <= self.threshold:
                return 0
            trace = self._compile(ctx)
            if trace is None:
                return 0
        steps = trace(ctx, frame, machine, budget)
        stats = machine.trace_stats
        if steps:
            stats["entries"] += 1
            stats["steps"] += steps
        else:
            stats["deopts"] += 1
            tracer = machine.tracer
            if tracer is not None:
                tracer.trace_deopt(ctx.name, frame.function.name,
                                   self.region[0].name)
        return steps

    def _compile(self, ctx) -> Optional[object]:
        machine = self.machine
        tracer = machine.tracer
        t0 = tracer.now_us() if tracer is not None else 0.0
        try:
            compiled = _RegionCompiler(machine, self.code,
                                       self.region).build()
        except _Untraceable:
            # Permanently hand the region back to the decoded tier
            # (and stop paying the entry hook).
            self.head_ops.traces = None
            return None
        except Exception:
            self.head_ops.traces = None
            return None
        self.compiled = compiled
        machine.trace_stats["compiled"] += 1
        if tracer is not None:
            tracer.trace_compile(self.code.function.name,
                                 self.region[0].name, len(self.region),
                                 self.steps_per_iter, t0)
        return compiled


# -- the region compiler ---------------------------------------------------------


_CMP_PY = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
           "gt": ">", "ge": ">="}


class _RegionCompiler:
    """Generates one Python function for a loop region.

    The generated signature is ``__trace(ctx, frame, machine, limit)
    -> steps_executed``; see the module docstring for the guard /
    writeback / step-accounting contract it implements.
    """

    def __init__(self, machine: Machine, code: DecodedFunction,
                 region: Tuple[BasicBlock, ...]) -> None:
        self.machine = machine
        self.code = code
        self.region = region
        self.head = region[0]
        self.env: Dict[str, object] = {
            "__MISS": _MISS,
            "__UNMAPPED": _UNMAPPED,
            "__RuntimeFault": RuntimeFault,
            "__td": _trunc_div,
        }
        self.lines: List[str] = []
        self.indent = 1
        self.counter = 0
        self.pending = 0
        #: Value -> generated local name (phis and body defs).
        self.local: Dict[Instruction, str] = {}
        #: local name -> "int" | "float" | "raw"
        self.kinds: Dict[str, str] = {}
        #: live-in Value -> preloaded local name
        self.livein: Dict[Value, str] = {}
        self.phis: List[Phi] = [i for i in self.head.instructions
                                if isinstance(i, Phi)]
        #: defs written back at exits, in emission order.
        self.def_order: List[Instruction] = []
        self.uses_memory = False

    # -- plumbing ---------------------------------------------------------------

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def bind(self, obj, prefix: str) -> str:
        name = self.fresh(prefix)
        self.env[name] = obj
        return name

    def flush(self) -> None:
        if self.pending:
            self.line(f"n += {self.pending}")
            self.pending = 0

    # -- operands ---------------------------------------------------------------

    def val(self, value: Value) -> Tuple[str, str]:
        """(expression, kind) for one operand, matching the decoded
        engine's operand pre-resolution.  May emit getter-call lines
        (flushing first: getters can fault)."""
        name = self.local.get(value)
        if name is not None:
            return name, self.kinds[name]
        cached = self.livein.get(value)
        if cached is not None:
            return cached, "raw"
        kind, payload = _operand(self.machine, value)
        if kind == "const":
            if isinstance(payload, bool) or isinstance(payload, int):
                return f"({payload!r})", "int"
            if isinstance(payload, float):
                return f"({payload!r})", "float"
            return self.bind(payload, "__c"), "raw"
        if kind == "getter":
            self.flush()
            name = self.fresh("u")
            getter = self.bind(payload, "__g")
            self.line(f"{name} = {getter}(ctx, frame)")
            return name, "raw"
        # A register defined outside the region: preloaded at entry.
        raise _Untraceable(f"unexpected live-in {value!r}")

    def as_int(self, value: Value) -> str:
        expr, kind = self.val(value)
        return expr if kind == "int" else f"int({expr})"

    def as_float(self, value: Value) -> str:
        expr, kind = self.val(value)
        return expr if kind == "float" else f"float({expr})"

    def as_raw(self, value: Value) -> str:
        return self.val(value)[0]

    def define(self, instr: Instruction, kind: str) -> str:
        name = f"v{len(self.local)}"
        self.local[instr] = name
        self.kinds[name] = kind
        if not isinstance(instr, Phi):
            self.def_order.append(instr)
        return name

    # -- entry ------------------------------------------------------------------

    def collect_liveins(self) -> List[Value]:
        """Registers read by the region but defined outside it (phi
        entry incomings are handled per-arm instead)."""
        defs = set()
        for block in self.region:
            for instr in block.instructions:
                defs.add(instr)
        liveins: List[Value] = []
        seen = set()

        def note(value: Value) -> None:
            if value in defs or id(value) in seen:
                return
            kind, _payload = _operand(self.machine, value)
            if kind == "reg":
                seen.add(id(value))
                liveins.append(value)

        back = self.region[-1]
        for block in self.region:
            for instr in block.instructions:
                if isinstance(instr, Phi):
                    for value, pred in instr.incomings:
                        if pred is back:
                            note(value)
                    continue
                for operand in instr.operands:
                    note(operand)
        return liveins

    def emit_entry(self) -> None:
        self.line("if getattr(ctx, 'privagic_parked', None) "
                  "is not None:")
        self.line("    return 0")
        self.line("values = frame.values")
        if self.uses_memory:
            self.line("__fast = machine.access_policy is None "
                      "and not machine.access_hooks")
        for value in self.collect_liveins():
            name = self.fresh("li")
            key = self.bind(value, "__K")
            self.livein[value] = name
            self.line(f"{name} = values.get({key}, __MISS)")
            self.line(f"if {name} is __MISS:")
            self.line("    return 0")

    def emit_phi_dispatch(self) -> List[str]:
        """Entry arms: one per header predecessor, loading that edge's
        incomings into the phi temps from ``frame.values`` (sound for
        the back edge too — exits write every def back)."""
        temps = [self.fresh("t") for _ in self.phis]
        if not self.phis:
            return temps
        tables = []
        for phi in self.phis:
            table: Dict[BasicBlock, Value] = {}
            for value, pred in phi.incomings:
                if pred not in table:
                    table[pred] = value  # first wins, like decoded
            tables.append(table)
        preds = list(self.head.predecessors)
        if not preds:
            raise _Untraceable("loop header without predecessors")
        self.line("prev = frame.prev_block")
        first = True
        for pred in preds:
            block_name = self.bind(pred, "__B")
            keyword = "if" if first else "elif"
            first = False
            self.line(f"{keyword} prev is {block_name}:")
            self.indent += 1
            bail = any(pred not in table for table in tables)
            if bail:
                # Decoded raises the precise missing-incoming IRError.
                self.line("return 0")
                self.indent -= 1
                continue
            for temp, table in zip(temps, tables):
                incoming = table[pred]
                kind, payload = _operand(self.machine, incoming)
                if kind == "const":
                    if isinstance(payload, (bool, int, float)):
                        self.line(f"{temp} = {payload!r}")
                    else:
                        self.line(f"{temp} = "
                                  f"{self.bind(payload, '__c')}")
                elif kind == "getter":
                    # Interning/address getters inside the phi step:
                    # leave this edge to the decoded engine.
                    self.line("return 0")
                    break
                else:
                    key = self.bind(incoming, "__K")
                    self.line(f"{temp} = values.get({key}, __MISS)")
                    self.line(f"if {temp} is __MISS:")
                    self.line("    return 0")
            self.indent -= 1
        self.line("else:")
        self.line("    return 0")
        return temps

    # -- exits ------------------------------------------------------------------

    def emit_writeback(self, upto: Optional[int] = None) -> None:
        """values[...] = local for the phis and the defs executed so
        far (``upto`` = len(def_order) prefix; None = all)."""
        for phi in self.phis:
            key = self.bind(phi, "__K")
            self.line(f"values[{key}] = {self.local[phi]}")
        defs = self.def_order if upto is None else self.def_order[:upto]
        for instr in defs:
            key = self.bind(instr, "__K")
            self.line(f"values[{key}] = {self.local[instr]}")

    def emit_exit(self, source: BasicBlock, target: BasicBlock) -> None:
        """Leave the trace through ``source``'s terminator into
        ``target`` (already executed and counted by the caller)."""
        target_ops = self.code.block_ops.get(target)
        if target_ops is None:
            raise _Untraceable(f"exit target {target.name} not decoded")
        self.emit_writeback(upto=len(self.def_order))
        self.line(f"frame.prev_block = {self.bind(source, '__B')}")
        self.line(f"frame.block = {self.bind(target, '__B')}")
        self.line(f"frame.ops = {self.bind(target_ops, '__O')}")
        self.line("frame.index = 0")
        self.line("return n")

    # -- instruction emission ---------------------------------------------------

    def emit_instruction(self, instr: Instruction) -> None:
        if isinstance(instr, Alloca):
            self.emit_alloca(instr)
        elif isinstance(instr, Load):
            self.emit_load(instr)
        elif isinstance(instr, Store):
            self.emit_store(instr)
        elif isinstance(instr, BinOp):
            self.emit_binop(instr)
        elif isinstance(instr, Cmp):
            self.emit_cmp(instr)
        elif isinstance(instr, GEP):
            self.emit_gep(instr)
        elif isinstance(instr, Cast):
            self.emit_cast(instr)
        elif isinstance(instr, Select):
            self.emit_select(instr)
        else:
            raise _Untraceable(f"cannot trace {type(instr).__name__}")
        self.pending += 1

    def emit_alloca(self, instr: Alloca) -> None:
        size = instr.allocated_type.size_slots()
        label = f"alloca:{instr.name or 'tmp'}"
        alloc = self.bind(self.machine.memory.alloc, "__fn")
        sregion = self.bind(self.machine.stack_region, "__fn")
        dest = self.define(instr, "int")
        self.line(f"{dest} = {alloc}({size}, {sregion}(ctx), {label!r})")

    def emit_load(self, instr: Load) -> None:
        addr = self.as_raw(instr.ptr)
        self.flush()
        dest = self.define(instr, "raw")
        read = self.bind(self.machine.mem_read, "__fn")
        slots = self.bind(self.machine.memory._slots, "__slots")
        self.line("if __fast:")
        self.line(f"    {dest} = {slots}.get({addr}, __UNMAPPED)")
        self.line(f"    if {dest} is __UNMAPPED:")
        self.line(f"        {dest} = {read}(ctx, {addr})")
        self.line("else:")
        self.line(f"    {dest} = {read}(ctx, {addr})")

    def emit_store(self, instr: Store) -> None:
        addr = self.as_raw(instr.ptr)
        value = self.as_raw(instr.value)
        self.flush()
        write = self.bind(self.machine.mem_write, "__fn")
        slots = self.bind(self.machine.memory._slots, "__slots")
        self.line(f"if __fast and {addr} in {slots}:")
        self.line(f"    {slots}[{addr}] = {value}")
        self.line("else:")
        self.line(f"    {write}(ctx, {addr}, {value})")

    def _wrap(self, dest: str, expr: str, bits: int) -> None:
        mask = (1 << bits) - 1
        sign = 1 << (bits - 1)
        mod = 1 << bits
        self.line(f"{dest} = ({expr}) & {mask}")
        self.line(f"{dest} = {dest} - {mod} if {dest} >= {sign} "
                  f"else {dest}")

    def emit_binop(self, instr: BinOp) -> None:
        op = instr.op
        if op[0] == "f" and op in ("fadd", "fsub", "fmul", "fdiv"):
            if op == "fdiv":
                lhs = self.as_float(instr.lhs)
                rhs = self.as_float(instr.rhs)
                self.flush()
                b = self.fresh("u")
                # Both operands coerce before the check, like decoded.
                a = self.fresh("u")
                self.line(f"{a} = {lhs}")
                self.line(f"{b} = {rhs}")
                self.line(f"if {b} == 0.0:")
                self.line("    raise __RuntimeFault("
                          "'float division by zero')")
                dest = self.define(instr, "float")
                self.line(f"{dest} = {a} / {b}")
                return
            py = {"fadd": "+", "fsub": "-", "fmul": "*"}[op]
            lhs = self.as_float(instr.lhs)
            rhs = self.as_float(instr.rhs)
            dest = self.define(instr, "float")
            self.line(f"{dest} = {lhs} {py} {rhs}")
            return
        bits = instr.type.bits if isinstance(instr.type, IntType) else 64
        m64 = _INT64_MASK
        if op in ("sdiv", "udiv", "srem", "urem"):
            lhs = self.as_int(instr.lhs)
            rhs = self.as_int(instr.rhs)
            self.flush()
            a = self.fresh("u")
            b = self.fresh("u")
            self.line(f"{a} = {lhs}")
            self.line(f"{b} = {rhs}")
            noun = ("division" if op in ("sdiv", "udiv")
                    else "remainder")
            self.line(f"if {b} == 0:")
            self.line(f"    raise __RuntimeFault("
                      f"'integer {noun} by zero')")
            dest = self.define(instr, "int")
            if op == "sdiv":
                self._wrap(dest, f"__td({a}, {b})", bits)
            elif op == "udiv":
                self._wrap(dest, f"({a} & {m64}) // ({b} & {m64})",
                           bits)
            elif op == "srem":
                self._wrap(dest, f"{a} - __td({a}, {b}) * {b}", bits)
            else:
                self._wrap(dest, f"({a} & {m64}) % ({b} & {m64})",
                           bits)
            return
        simple = {"add": "+", "sub": "-", "mul": "*",
                  "and": "&", "or": "|", "xor": "^"}
        if op in simple:
            lhs = self.as_int(instr.lhs)
            rhs = self.as_int(instr.rhs)
            dest = self.define(instr, "int")
            self._wrap(dest, f"{lhs} {simple[op]} {rhs}", bits)
            return
        if op in ("shl", "lshr", "ashr"):
            lhs = self.as_int(instr.lhs)
            rhs = self.as_int(instr.rhs)
            dest = self.define(instr, "int")
            if op == "shl":
                self._wrap(dest, f"{lhs} << ({rhs} & 63)", bits)
            elif op == "lshr":
                self._wrap(dest, f"({lhs} & {m64}) >> ({rhs} & 63)",
                           bits)
            else:
                self._wrap(dest, f"{lhs} >> ({rhs} & 63)", bits)
            return
        raise _Untraceable(f"binop {op}")

    def emit_cmp(self, instr: Cmp) -> None:
        pred = instr.predicate
        if pred[0] == "f":
            py = _CMP_PY.get(pred[1:])
            if py is None:
                raise _Untraceable(f"cmp {pred}")
            lhs = self.as_float(instr.lhs)
            rhs = self.as_float(instr.rhs)
        elif pred[0] == "u" and pred[1:] in _CMP_PY:
            py = _CMP_PY[pred[1:]]
            m64 = _INT64_MASK
            lhs = f"({self.as_int(instr.lhs)} & {m64})"
            rhs = f"({self.as_int(instr.rhs)} & {m64})"
        else:
            if pred[0] == "s":
                pred = pred[1:]
            py = _CMP_PY.get(pred)
            if py is None:
                raise _Untraceable(f"cmp {instr.predicate}")
            lhs = self.as_int(instr.lhs)
            rhs = self.as_int(instr.rhs)
        dest = self.define(instr, "int")
        self.line(f"{dest} = 1 if {lhs} {py} {rhs} else 0")

    def emit_gep(self, instr: GEP) -> None:
        current = instr.ptr.type.pointee
        static = 0
        dynamic: List[Tuple[Value, int]] = []

        def add_index(idx: Value, scale: int) -> None:
            nonlocal static
            kind, payload = _operand(self.machine, idx)
            if (kind == "const"
                    and isinstance(payload, (bool, int, float))):
                static += int(payload) * scale
            else:
                dynamic.append((idx, scale))

        indices = instr.indices
        add_index(indices[0], current.size_slots())
        for idx in indices[1:]:
            if isinstance(current, StructType):
                if not isinstance(idx, Constant):
                    raise _Untraceable("dynamic struct gep")
                field = int(idx.value)
                static += current.field_offset_slots(field)
                current = current.fields[field].type
            elif isinstance(current, ArrayType):
                add_index(idx, current.element.size_slots())
                current = current.element
            else:
                raise _Untraceable("gep into scalar")
        base, base_kind = self.val(instr.ptr)
        parts = [base]
        if static:
            parts.append(str(static))
        for idx, scale in dynamic:
            parts.append(f"{self.as_int(idx)} * {scale}")
        dest = self.define(instr,
                           "int" if base_kind == "int" else "raw")
        self.line(f"{dest} = " + " + ".join(parts))

    def emit_cast(self, instr: Cast) -> None:
        kind = instr.kind
        if kind in ("bitcast", "inttoptr", "ptrtoint"):
            expr, vkind = self.val(instr.value)
            dest = self.define(instr, vkind)
            self.line(f"{dest} = {expr}")
        elif kind == "trunc":
            bits = instr.to_type.bits  # type: ignore[attr-defined]
            dest = self.define(instr, "int")
            self._wrap(dest, self.as_int(instr.value), bits)
        elif kind in ("zext", "sext", "fptosi"):
            expr = self.as_int(instr.value)
            dest = self.define(instr, "int")
            self.line(f"{dest} = {expr}")
        elif kind == "sitofp":
            expr = self.as_float(instr.value)
            dest = self.define(instr, "float")
            self.line(f"{dest} = {expr}")
        else:
            raise _Untraceable(f"cast {kind}")

    def emit_select(self, instr: Select) -> None:
        # A Python conditional expression evaluates only the chosen
        # side, like the decoded engine — but a getter operand would
        # have been hoisted above the condition, so bail on those.
        for operand in (instr.cond, instr.true_value,
                        instr.false_value):
            if (operand not in self.local
                    and operand not in self.livein):
                kind, _payload = _operand(self.machine, operand)
                if kind == "getter":
                    raise _Untraceable("select over getter operand")
        cond = self.as_raw(instr.cond)
        true_expr, true_kind = self.val(instr.true_value)
        false_expr, false_kind = self.val(instr.false_value)
        kind = (true_kind if true_kind == false_kind else "raw")
        dest = self.define(instr, kind)
        self.line(f"{dest} = {true_expr} if {cond} else {false_expr}")

    # -- assembly ---------------------------------------------------------------

    def build(self):
        region = self.region
        head = region[0]
        self.uses_memory = any(isinstance(i, (Load, Store))
                               for b in region for i in b.instructions)
        steps_per_iter = max(1, region_steps(region))

        self.lines.append("def __trace(ctx, frame, machine, limit):")
        self.emit_entry()
        temps = self.emit_phi_dispatch()
        self.line("n = 0")
        self.line("try:")
        self.indent += 1
        self.line("while True:")
        self.indent += 1
        self.line(f"if limit - n < {steps_per_iter}:")
        self.line("    break")
        # The phi group: one atomic step, temps staged by the entry
        # dispatch (first iteration) or the back-edge (later ones).
        if self.phis:
            names = [self.define(phi, "raw") for phi in self.phis]
            self.line(", ".join(names) + " = " + ", ".join(temps))
            self.pending += 1
        back = region[-1]
        for block in region:
            instrs = block.instructions
            body = [i for i in instrs[:-1] if not isinstance(i, Phi)]
            for instr in body:
                self.emit_instruction(instr)
            term = instrs[-1]
            self.pending += 1  # the terminator's own step
            if isinstance(term, Jump):
                if term.target is head:
                    if block is not back:
                        raise _Untraceable("interior back edge")
                    self.emit_backedge(temps)
                # else: fall through into the next chain block.
            else:  # Branch
                then_in = (term.then_block is head
                           or term.then_block in region)
                cond = self.as_raw(term.cond)
                self.flush()
                exit_block = (term.else_block if then_in
                              else term.then_block)
                negate = "not " if then_in else ""
                # Deopt-free exit: the branch already executed (and
                # was counted), so leave through it exactly.
                self.line(f"if {negate}({cond}):")
                self.indent += 1
                self.emit_exit(block, exit_block)
                self.indent -= 1
                if term.then_block is head or term.else_block is head:
                    if block is not back:
                        raise _Untraceable("interior back edge")
                    self.emit_backedge(temps)
                # else: fall through into the next chain block.
        self.indent -= 1  # while
        # Budget exhausted before the next iteration: the last
        # completed iteration's back edge already ran, so the frame
        # sits at the header with every local valid.
        self.line("if n:")
        self.indent += 1
        self.emit_writeback()
        self.line(f"frame.prev_block = {self.bind(back, '__B')}")
        self.indent -= 1
        self.line("return n")
        self.indent -= 1  # try
        self.line("finally:")
        self.line("    if n:")
        self.line("        ctx.steps += n")
        self.line("        machine.total_steps += n")

        fn = self.code.function
        source = "\n".join(self.lines)
        code_obj = compile(source,
                           f"<trace:@{fn.name}:{head.name}>", "exec")
        namespace = dict(self.env)
        exec(code_obj, namespace)
        trace = namespace["__trace"]
        trace.__trace_source__ = source  # debugging / tests
        return trace

    def emit_backedge(self, temps: List[str]) -> None:
        """Stage the back-edge phi incomings and start the next
        iteration."""
        self.flush()
        back = self.region[-1]
        if self.phis:
            exprs = []
            for phi in self.phis:
                incoming = None
                for value, pred in phi.incomings:
                    if pred is back:
                        incoming = value
                        break
                if incoming is None:
                    raise _Untraceable("missing back-edge incoming")
                exprs.append(self.as_raw(incoming))
            self.line(", ".join(temps) + " = " + ", ".join(exprs))
        self.line("continue")


_MISS = object()
_UNMAPPED = object()


# -- the traced execution context ------------------------------------------------


class TracedExecutionContext(DecodedExecutionContext):
    """The decoded engine plus the trace tier: ``run_burst`` consults
    the region hook when dispatching at a block head; single stepping
    (:meth:`step`) is inherited unchanged, so lockstep schedules and
    step-level differential tests behave identically."""

    def run_burst(self, limit: int, contexts) -> Tuple[int, bool]:
        machine = self.machine
        stack = self.stack
        tracer = machine.tracer
        t0 = tracer.now_us() if tracer is not None else 0.0
        start_steps = self.steps
        n_ctx = len(contexts)
        attempts = 0
        advanced_any = False
        while attempts < limit:
            if self.finished or not stack:
                break
            frame = stack[-1]
            ops = frame.ops
            if ops is None:
                ops = self._attach_ops(frame)
                if ops is None:
                    before = self.steps
                    attempts += 1
                    ExecutionContext.step(self)
                    if self.steps == before:
                        break
                    advanced_any = True
                    if len(contexts) != n_ctx:
                        break
                    continue
            index = frame.index
            try:
                if index == 0 and ops.traces is not None:
                    executed = ops.traces.enter(self, frame,
                                                limit - attempts)
                    if executed:
                        attempts += executed
                        advanced_any = True
                        continue
                    # Deopt / still warming: fall through to the
                    # decoded dispatch below for this block.
                fused = ops.burst[index]
                if fused is not None and \
                        ops.blen[index] <= limit - attempts:
                    before = self.steps
                    while True:
                        fused(self, frame)
                        ops = frame.ops
                        index = frame.index
                        if index == 0 and ops.traces is not None:
                            break  # let the trace hook take over
                        fused = ops.burst[index]
                        if fused is None or ops.blen[index] > \
                                limit - attempts - (self.steps - before):
                            break
                    attempts += self.steps - before
                    advanced_any = True
                    continue
                advanced = ops[index](self, frame)
            except RuntimeFault:
                self.finished = True
                raise
            except IndexError:
                if index >= len(ops):
                    raise RuntimeFault(
                        f"{self.name}: fell off block {frame.block.name} "
                        f"in @{frame.function.name}") from None
                raise
            attempts += 1
            if advanced:
                self.steps += 1
                machine.total_steps += 1
                advanced_any = True
            else:
                break
            if len(contexts) != n_ctx:
                break
        if tracer is not None and self.steps > start_steps:
            tracer.step_burst(self.name, self.mode,
                              self.steps - start_steps, t0)
        return attempts, advanced_any
