"""mem2reg — promote local variables to SSA registers.

This reproduces the LLVM pass Privagic runs first (paper §5.1): a
local variable (``alloca``) is promoted to registers *except if the
code creates a pointer to it*.  After promotion, inferring register
colors covers local variables too, and — crucially for the paper's
multi-threading argument — a promoted variable can only be accessed by
a single thread, so its inferred color is correct even in
multi-threaded applications.

We additionally refuse to promote allocas whose type carries an
explicit color: the developer pinned those to an enclave, so they must
remain memory locations.

Standard SSA construction: phi insertion at iterated dominance
frontiers of defining blocks, then renaming along the dominator tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.cfg import DominatorTree
from repro.ir.instructions import Alloca, Instruction, Load, Phi, Store
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import UndefValue, Value


def promotable_allocas(fn: Function) -> List[Alloca]:
    """Allocas that are only ever loaded from / stored to (never has
    their address taken by any other use) and are not explicitly
    colored."""
    result = []
    for instr in fn.instructions():
        if not isinstance(instr, Alloca):
            continue
        if instr.allocated_type.color is not None:
            continue
        if instr.allocated_type.is_aggregate:
            continue
        promotable = True
        for user in instr.users:
            if isinstance(user, Load) and user.ptr is instr:
                continue
            if isinstance(user, Store) and user.ptr is instr and \
                    user.value is not instr:
                continue
            promotable = False
            break
        if promotable:
            result.append(instr)
    return result


def mem2reg(target, cache=None) -> int:
    """Promote all promotable allocas; returns how many were promoted.

    Accepts a :class:`Function` or a whole :class:`Module`.  ``cache``
    is an optional :class:`~repro.pipeline.analyses.AnalysisCache`
    supplying the dominator tree; promotion preserves the CFG, so a
    shared cache stays valid across this pass.
    """
    if isinstance(target, Module):
        return sum(mem2reg(f, cache=cache)
                   for f in target.defined_functions())
    return _promote_function(target, cache)


def _promote_function(fn: Function, cache=None) -> int:
    allocas = promotable_allocas(fn)
    if not allocas:
        return 0
    if cache is None:
        from repro.pipeline.analyses import AnalysisCache
        cache = AnalysisCache()
    reachable = cache.reachable(fn)
    dt = cache.dominators(fn)
    frontier = cache.frontier(fn)

    # Sets of blocks hash by identity, so their iteration order varies
    # from process to process; every order-sensitive step below sorts
    # by layout position to keep SSA names and phi operand order
    # byte-stable across runs.
    layout = {block: i for i, block in enumerate(fn.blocks)}

    for alloca in allocas:
        _promote_one(fn, alloca, dt, frontier, reachable, layout)
    return len(allocas)


def _promote_one(fn: Function, alloca: Alloca, dt: DominatorTree,
                 frontier, reachable: Set[BasicBlock],
                 layout: Dict[BasicBlock, int]) -> None:
    loads = [u for u in alloca.users if isinstance(u, Load)]
    stores = [u for u in alloca.users if isinstance(u, Store)]

    # Phase 1: place phi nodes at the iterated dominance frontier of
    # every block containing a store.
    defining_blocks = {s.parent for s in stores if s.parent in reachable}
    phi_blocks: Dict[BasicBlock, Phi] = {}
    work = sorted(defining_blocks, key=layout.__getitem__)
    while work:
        block = work.pop()
        for df_block in sorted(frontier.get(block, ()),
                               key=layout.__getitem__):
            if df_block in phi_blocks:
                continue
            phi = Phi(alloca.allocated_type,
                      fn.next_value_name(alloca.name or "mem"))
            df_block.insert(0, phi)
            phi.parent = df_block
            phi_blocks[df_block] = phi
            if df_block not in defining_blocks:
                work.append(df_block)

    # Phase 2: rename along the dominator tree.
    undef = UndefValue(alloca.allocated_type)
    replacements: Dict[Instruction, Value] = {}
    erase_list: List[Instruction] = []

    children: Dict[Optional[BasicBlock], List[BasicBlock]] = {}
    for block in sorted(reachable, key=layout.__getitem__):
        children.setdefault(dt.immediate(block), []).append(block)

    def rename(block: BasicBlock, incoming: Value) -> None:
        current = incoming
        phi = phi_blocks.get(block)
        if phi is not None:
            current = phi
        for instr in list(block.instructions):
            if isinstance(instr, Load) and instr.ptr is alloca:
                replacements[instr] = current
                erase_list.append(instr)
            elif isinstance(instr, Store) and instr.ptr is alloca:
                current = instr.value
                erase_list.append(instr)
        for succ in block.successors:
            succ_phi = phi_blocks.get(succ)
            if succ_phi is not None:
                succ_phi.add_incoming(current, block)
        for child in children.get(block, []):
            rename(child, current)

    # The dominator tree rooted at entry covers all reachable blocks;
    # renaming must follow tree edges, passing the value live at the
    # *end* of the parent.  The classic algorithm passes the value at
    # the end of the immediate dominator, which is exactly what the
    # recursion above does.
    rename(fn.entry_block, undef)

    # Phase 3: apply replacements and delete the alloca.
    for load, value in replacements.items():
        final = value
        # A replacement value may itself have been a removed load.
        seen = set()
        while final in replacements and final not in seen:
            seen.add(final)
            final = replacements[final]
        load.replace_all_uses_with(final)
    for instr in erase_list:
        instr.erase()
    alloca.erase()
