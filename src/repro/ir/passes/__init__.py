"""IR transformation passes.

* :func:`repro.ir.passes.mem2reg.mem2reg` — promote pointer-free local
  variables to SSA registers (paper §5.1: run before type analysis so
  that inferring register colors also covers local variables).
* :func:`repro.ir.passes.dce.dead_code_elimination` — remove
  side-effect-free instructions with no users (paper §7.3.1: cleans up
  uselessly replicated F instructions in chunks).
* :func:`repro.ir.passes.simplifycfg.simplify_cfg` — fold trivial
  branches, delete unreachable blocks, merge jump chains.
* :func:`repro.ir.passes.constfold.constant_fold` — evaluate
  constant-operand arithmetic/comparisons at compile time.

The :mod:`repro.pipeline` pass manager schedules these by name;
calling them directly remains supported for tests and tools.
"""

from repro.ir.passes.constfold import constant_fold
from repro.ir.passes.dce import dead_code_elimination
from repro.ir.passes.mem2reg import mem2reg, promotable_allocas
from repro.ir.passes.simplifycfg import simplify_cfg

__all__ = ["mem2reg", "promotable_allocas", "dead_code_elimination",
           "simplify_cfg", "constant_fold"]
