"""CFG simplification.

Three transformations, iterated to a fixed point:

* fold trivial conditional branches — constant condition, or both
  targets identical — into unconditional jumps;
* delete blocks unreachable from the entry (fixing up phis of the
  surviving blocks);
* merge single-successor blocks into their single-predecessor
  successor, shortening jump chains (each removed ``jmp`` is one
  fewer interpreter step on every execution).

Control-dependence regions are preserved: only straight-line jump
edges are merged, and a join point (two or more predecessors) is
never folded into a predecessor, so Rule-4 block coloring (§6.1.1)
sees the same influenced regions before and after.
"""

from __future__ import annotations

from repro.ir.cfg import reachable_blocks
from repro.ir.instructions import Branch, Jump, Phi
from repro.ir.module import Function, Module
from repro.ir.values import Constant, UndefValue


def simplify_cfg(target) -> int:
    """Simplify the CFG; returns how many simplifications applied
    (branches folded + blocks removed or merged).

    Accepts a :class:`Function` or a whole :class:`Module`.
    """
    if isinstance(target, Module):
        return sum(simplify_cfg(f) for f in target.defined_functions())
    return _simplify_function(target)


def _simplify_function(fn: Function) -> int:
    if not fn.blocks:
        return 0
    total = 0
    changed = True
    while changed:
        changed = False
        n = _fold_branches(fn)
        n += _remove_unreachable(fn)
        n += _merge_chains(fn)
        if n:
            total += n
            changed = True
    return total


def _fold_branches(fn: Function) -> int:
    """Replace conditional branches with known outcomes by jumps."""
    folded = 0
    for block in fn.blocks:
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        if term.then_block is term.else_block:
            target, dropped = term.then_block, None
        elif isinstance(term.cond, Constant):
            if term.cond.value:
                target, dropped = term.then_block, term.else_block
            else:
                target, dropped = term.else_block, term.then_block
        else:
            continue
        term.erase()
        block.append(Jump(target))
        # The not-taken successor loses the edge from ``block``.
        if dropped is not None and dropped is not target:
            for phi in dropped.phis:
                phi.remove_incoming(block)
        folded += 1
    return folded


def _remove_unreachable(fn: Function) -> int:
    """Delete blocks no path from the entry reaches."""
    reachable = reachable_blocks(fn)
    dead = [b for b in fn.blocks if b not in reachable]
    if not dead:
        return 0
    dead_set = set(dead)
    for block in fn.blocks:
        if block in dead_set:
            continue
        for phi in block.phis:
            if any(b in dead_set for b in phi.incoming_blocks):
                for d in dead_set:
                    phi.remove_incoming(d)
    for block in dead:
        for instr in list(block.instructions):
            instr.replace_all_uses_with(UndefValue(instr.type))
            instr.erase()
        fn.blocks.remove(block)
        block.parent = None
    return len(dead)


def _merge_chains(fn: Function) -> int:
    """Merge ``pred --jmp--> succ`` pairs where the edge is the only
    way in and out of both ends."""
    merged = 0
    restart = True
    while restart:
        restart = False
        for block in fn.blocks:
            term = block.terminator
            if not isinstance(term, Jump):
                continue
            succ = term.target
            if succ is block or succ is fn.entry_block:
                continue
            if len(succ.predecessors) != 1:
                continue
            # Single predecessor: phis in succ are trivial.
            for phi in list(succ.phis):
                phi.replace_all_uses_with(phi.incoming_for(block))
                phi.erase()
            term.erase()
            for instr in list(succ.instructions):
                succ.instructions.remove(instr)
                instr.parent = block
                block.instructions.append(instr)
            # succ's successors now flow from ``block``.
            for nxt in block.successors:
                for phi in nxt.phis:
                    for i, b in enumerate(phi.incoming_blocks):
                        if b is succ:
                            phi.incoming_blocks[i] = block
            fn.blocks.remove(succ)
            succ.parent = None
            merged += 1
            restart = True
            break
    return merged
