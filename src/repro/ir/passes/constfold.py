"""Constant folding.

Evaluates arithmetic, comparison, select and numeric-cast instructions
whose operands are all constants, replacing their uses with the
computed constant.  The evaluation reuses the interpreter's own
helpers so a folded value is bit-for-bit what the runtime would have
produced (same wrapping, same truncated division).

Folding is deliberately conservative about faults: a division or
remainder by a constant zero is left in place so the runtime fault
still fires at the original program point.
"""

from __future__ import annotations

from repro.ir.instructions import BinOp, Cast, Cmp, Select
from repro.ir.interp import _apply_binop, _apply_cast, _apply_cmp
from repro.ir.module import Function, Module
from repro.ir.values import Constant

#: Cast kinds safe to fold on numeric constants (pointer-ish casts
#: keep their provenance for the memory model).
_FOLDABLE_CASTS = frozenset({"trunc", "zext", "sext", "sitofp", "fptosi"})


def constant_fold(target) -> int:
    """Fold constant operations; returns how many were folded.

    Accepts a :class:`Function` or a whole :class:`Module`.
    """
    if isinstance(target, Module):
        return sum(constant_fold(f) for f in target.defined_functions())
    return _fold_function(target)


def _fold_function(fn: Function) -> int:
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for instr in list(block.instructions):
                replacement = _try_fold(instr)
                if replacement is not None:
                    instr.replace_all_uses_with(replacement)
                    instr.erase()
                    folded += 1
                    changed = True
    return folded


def _try_fold(instr):
    if isinstance(instr, BinOp):
        lhs, rhs = instr.lhs, instr.rhs
        if not (isinstance(lhs, Constant) and isinstance(rhs, Constant)):
            return None
        if instr.op in ("sdiv", "udiv", "srem", "urem", "fdiv") and \
                not rhs.value:
            return None  # preserve the runtime fault
        return Constant(instr.type, _apply_binop(instr, lhs.value,
                                                 rhs.value))
    if isinstance(instr, Cmp):
        lhs, rhs = instr.lhs, instr.rhs
        if isinstance(lhs, Constant) and isinstance(rhs, Constant):
            return Constant(instr.type,
                            _apply_cmp(instr.predicate, lhs.value,
                                       rhs.value))
        return None
    if isinstance(instr, Select):
        if isinstance(instr.cond, Constant):
            return instr.true_value if instr.cond.value \
                else instr.false_value
        return None
    if isinstance(instr, Cast) and instr.kind in _FOLDABLE_CASTS:
        value = instr.value
        if isinstance(value, Constant) and isinstance(
                value.value, (int, float)):
            return Constant(instr.type, _apply_cast(instr, value.value))
    return None
