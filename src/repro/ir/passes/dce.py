"""Dead-code elimination.

Removes instructions with no users and no side effects, iterating to a
fixed point.  The partitioner relies on this pass to clean up F
instructions uselessly replicated into chunks (paper §7.3.1) and the
residue of the global/struct rewritings.
"""

from __future__ import annotations

from repro.ir.instructions import Instruction, Phi
from repro.ir.module import Function, Module


def dead_code_elimination(target) -> int:
    """Remove dead instructions; returns how many were erased."""
    if isinstance(target, Module):
        return sum(dead_code_elimination(f)
                   for f in target.defined_functions())
    return _dce_function(target)


def _dce_function(fn: Function) -> int:
    erased = 0
    changed = True
    while changed:
        changed = False
        # Sweep each block bottom-up so a dead chain (a feeds b feeds
        # c, only c initially dead) dies in one iteration; the outer
        # fixpoint loop still catches cross-block chains and phi
        # cycles.
        for block in fn.blocks:
            for instr in reversed(list(block.instructions)):
                if instr.has_side_effects:
                    continue
                # A phi may be its own (indirect) only user in a loop;
                # treat self-uses as no use.
                real_users = {u for u in instr.users if u is not instr}
                if isinstance(instr, Phi) and _only_phi_cycle(instr):
                    real_users = set()
                if not real_users:
                    instr.erase()
                    erased += 1
                    changed = True
    return erased


def _only_phi_cycle(root: Phi) -> bool:
    """True when ``root`` is only used by phis that form a closed cycle
    with no escape to a real instruction."""
    seen = set()
    work = [root]
    while work:
        node = work.pop()
        if node in seen:
            continue
        seen.add(node)
        for user in node.users:
            if user is node:
                continue
            if not isinstance(user, Phi):
                return False
            work.append(user)
    return True
