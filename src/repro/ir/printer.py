"""Textual printer for the IR, in an LLVM-flavoured syntax.

The printed form round-trips through :mod:`repro.ir.parser` and is the
format used in tests, diagnostics and the TCB line-count metrics of
Table 4 (the paper reports "lines of LLVM code").
"""

from __future__ import annotations

from typing import Dict

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Cmp,
    GEP,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import StructType
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value


class _Namer:
    """Assigns stable printable names to values within one function."""

    def __init__(self):
        self._names: Dict[int, str] = {}
        self._next = 0

    def ref(self, value: Value) -> str:
        if isinstance(value, Constant):
            if isinstance(value.value, str):
                escaped = value.value.replace("\\", "\\\\").replace(
                    '"', '\\"').replace("\n", "\\n")
                return f'c"{escaped}"'
            return str(value.value)
        if isinstance(value, UndefValue):
            return "undef"
        if isinstance(value, (GlobalVariable, Function)):
            return f"@{value.name}"
        key = id(value)
        if key not in self._names:
            if value.name:
                self._names[key] = f"%{value.name}"
            else:
                self._names[key] = f"%{self._next}"
                self._next += 1
        return self._names[key]

    def typed(self, value: Value) -> str:
        return f"{value.type} {self.ref(value)}"


def print_module(module: Module) -> str:
    lines = [f"; module {module.name}"]
    for st in module.structs.values():
        lines.append(_print_struct(st))
    for gv in module.globals.values():
        lines.append(_print_global(gv))
    for fn in module.functions.values():
        lines.append(print_function(fn))
    return "\n".join(lines) + "\n"


def _print_struct(st: StructType) -> str:
    fields = ", ".join(f"{f.type} {f.name}" for f in st.fields)
    return f"%{st.name} = type {{ {fields} }}"


def _print_global(gv: GlobalVariable) -> str:
    namer = _Namer()
    init = (f" {namer.ref(gv.initializer)}"
            if gv.initializer is not None else " zeroinitializer")
    return f"@{gv.name} = global {gv.value_type}{init}"


def print_function(fn: Function) -> str:
    namer = _Namer()
    args = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    attrs = "".join(f" {a}" for a in sorted(fn.attributes))
    header = f"{fn.ftype.ret} @{fn.name}({args}){attrs}"
    if fn.is_declaration:
        return f"declare {header}"
    lines = [f"define {header} {{"]
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for instr in block.instructions:
            lines.append(f"  {print_instruction(instr, namer)}")
    lines.append("}")
    return "\n".join(lines)


def print_instruction(instr: Instruction, namer: _Namer = None) -> str:
    namer = namer or _Namer()
    n = namer.ref
    if isinstance(instr, Alloca):
        return f"{n(instr)} = alloca {instr.allocated_type}"
    if isinstance(instr, Load):
        return f"{n(instr)} = load {namer.typed(instr.ptr)}"
    if isinstance(instr, Store):
        return f"store {namer.typed(instr.value)}, {namer.typed(instr.ptr)}"
    if isinstance(instr, BinOp):
        return (f"{n(instr)} = {instr.op} {instr.lhs.type} "
                f"{n(instr.lhs)}, {n(instr.rhs)}")
    if isinstance(instr, Cmp):
        return (f"{n(instr)} = cmp {instr.predicate} {instr.lhs.type} "
                f"{n(instr.lhs)}, {n(instr.rhs)}")
    if isinstance(instr, GEP):
        idx = ", ".join(namer.typed(i) for i in instr.indices)
        return f"{n(instr)} = gep {namer.typed(instr.ptr)}, {idx}"
    if isinstance(instr, Call):
        args = ", ".join(namer.typed(a) for a in instr.args)
        prefix = "" if instr.is_void else f"{n(instr)} = "
        return f"{prefix}call {instr.type} {n(instr.callee)}({args})"
    if isinstance(instr, Branch):
        return (f"br {namer.typed(instr.cond)}, label %{instr.then_block.name}"
                f", label %{instr.else_block.name}")
    if isinstance(instr, Jump):
        return f"jmp label %{instr.target.name}"
    if isinstance(instr, Ret):
        if instr.value is None:
            return "ret void"
        return f"ret {namer.typed(instr.value)}"
    if isinstance(instr, Phi):
        incs = ", ".join(f"[ {n(v)}, %{b.name} ]"
                         for v, b in instr.incomings)
        return f"{n(instr)} = phi {instr.type} {incs}"
    if isinstance(instr, Cast):
        return (f"{n(instr)} = {instr.kind} {namer.typed(instr.value)} "
                f"to {instr.to_type}")
    if isinstance(instr, Select):
        return (f"{n(instr)} = select {namer.typed(instr.cond)}, "
                f"{namer.typed(instr.true_value)}, "
                f"{namer.typed(instr.false_value)}")
    if isinstance(instr, Unreachable):
        return "unreachable"
    return f"<unknown {instr.opcode}>"
