"""The IR instruction set.

Instructions are values (SSA): an instruction *is* the register it
outputs (paper §2.2).  Operand edges maintain the use-def graph
automatically.

The set mirrors the LLVM subset the paper's analyses care about:
``alloca`` / ``load`` / ``store`` for memory, arithmetic/comparison
operations, ``getelementptr`` (GEP) for field and array addressing,
``call`` (direct and indirect), branches, ``phi``, casts and
``select``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import IRError
from repro.ir.types import (
    ArrayType,
    FunctionType,
    IntType,
    IRType,
    PointerType,
    StructType,
    VoidType,
    register_type,
    I1,
    VOID,
)
from repro.ir.values import Constant, Value

#: Binary opcodes understood by :class:`BinOp`.
BINARY_OPS = frozenset({
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
    "fadd", "fsub", "fmul", "fdiv",
})

#: Comparison predicates understood by :class:`Cmp`.
CMP_PREDICATES = frozenset({
    "eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge",
    "feq", "fne", "flt", "fle", "fgt", "fge",
})

#: Cast kinds understood by :class:`Cast`.
CAST_KINDS = frozenset({
    "bitcast", "trunc", "zext", "sext", "ptrtoint", "inttoptr",
    "sitofp", "fptosi",
})


class Instruction(Value):
    """Base class for all instructions.

    ``operands`` is the ordered list of input values; assigning through
    :meth:`set_operand` keeps the use-def graph consistent.
    """

    #: Class-level opcode name, overridden by subclasses.
    opcode = "instr"

    def __init__(self, type: IRType, operands: Sequence[Value] = (),
                 name: str = ""):
        super().__init__(type, name)
        self.operands: List[Value] = []
        self.parent = None  # owning BasicBlock, set on insertion
        #: Source position ``(line, column)`` of the MiniC construct
        #: this instruction was lowered from, or None for synthesized
        #: code.  Carried through cloning so diagnostics on specialized
        #: functions still point at the original source.
        self.loc: Optional[Tuple[int, int]] = None
        for op in operands:
            self._append_operand(op)

    # -- operand management --------------------------------------------------

    def _append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise IRError(
                f"{self.opcode}: operand {value!r} is not an IR value")
        self.operands.append(value)
        value.users.add(self)

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        self.operands[index] = value
        if old not in self.operands:
            old.users.discard(self)
        value.users.add(self)

    def _replace_operand(self, old: Value, new: Value) -> None:
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                new.users.add(self)
        old.users.discard(self)

    def drop_operands(self) -> None:
        """Detach this instruction from its operands (when deleting)."""
        for op in set(self.operands):
            op.users.discard(self)
        self.operands = []

    # -- classification ------------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Branch, Jump, Ret, Unreachable))

    @property
    def has_side_effects(self) -> bool:
        """True when the instruction must not be removed by DCE even if
        its result is unused."""
        return isinstance(self, (Store, Call)) or self.is_terminator

    def erase(self) -> None:
        """Remove this instruction from its block and drop operands."""
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None
        self.drop_operands()


class Alloca(Instruction):
    """Stack allocation of one value of ``allocated_type``; yields a
    pointer to it (paper Fig 2 line 3)."""

    opcode = "alloca"

    def __init__(self, allocated_type: IRType, name: str = ""):
        super().__init__(PointerType(allocated_type), (), name)
        self.allocated_type = allocated_type


class Load(Instruction):
    """``r = load p`` — read the value pointed to by ``p``."""

    opcode = "load"

    def __init__(self, ptr: Value, name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise IRError(f"load from non-pointer {ptr.type}")
        super().__init__(register_type(ptr.type.pointee), (ptr,), name)

    @property
    def ptr(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """``store v, p`` — write ``v`` to the location pointed by ``p``."""

    opcode = "store"

    def __init__(self, value: Value, ptr: Value):
        if not isinstance(ptr.type, PointerType):
            raise IRError(f"store to non-pointer {ptr.type}")
        super().__init__(VOID, (value, ptr))

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def ptr(self) -> Value:
        return self.operands[1]


class BinOp(Instruction):
    """A binary arithmetic/logic operation (``add``, ``mul``, ...)."""

    opcode = "binop"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise IRError(f"unknown binary op {op!r}")
        super().__init__(register_type(lhs.type), (lhs, rhs), name)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Cmp(Instruction):
    """An integer or float comparison producing an ``i1``."""

    opcode = "cmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value,
                 name: str = ""):
        if predicate not in CMP_PREDICATES:
            raise IRError(f"unknown comparison predicate {predicate!r}")
        super().__init__(I1, (lhs, rhs), name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class GEP(Instruction):
    """``getelementptr`` — compute the address of a struct field or
    array element.

    ``indices`` follow LLVM semantics on our slot model:

    * a leading index steps over whole objects of the pointee type
      (pointer arithmetic);
    * subsequent indices drill into struct fields (constant index) or
      array elements.
    """

    opcode = "gep"

    def __init__(self, ptr: Value, indices: Sequence[Value],
                 name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise IRError(f"gep on non-pointer {ptr.type}")
        result_type = PointerType(
            self._walk_type(ptr.type.pointee, list(indices)[1:]))
        super().__init__(result_type, (ptr, *indices), name)

    @staticmethod
    def _walk_type(current: IRType, rest: Sequence[Value]) -> IRType:
        for idx in rest:
            if isinstance(current, StructType):
                if not isinstance(idx, Constant):
                    raise IRError("struct GEP index must be constant")
                field_i = int(idx.value)
                if not 0 <= field_i < len(current.fields):
                    raise IRError(
                        f"struct {current.name} has no field #{field_i}")
                current = current.fields[field_i].type
            elif isinstance(current, ArrayType):
                current = current.element
            else:
                raise IRError(f"cannot index into {current}")
        return current

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]

    def struct_field(self) -> Optional[Tuple[StructType, int]]:
        """If this GEP addresses a struct field, return the struct type
        and field index (used by the §7.2 rewriting)."""
        base = self.ptr.type.pointee
        idxs = self.indices
        if (isinstance(base, StructType) and len(idxs) == 2
                and isinstance(idxs[1], Constant)):
            return base, int(idxs[1].value)
        return None


class Call(Instruction):
    """A function call; ``callee`` is a :class:`~repro.ir.module.Function`
    for a direct call or any pointer-typed value for an indirect call
    (paper §6.3)."""

    opcode = "call"

    def __init__(self, callee: Value, args: Sequence[Value],
                 name: str = ""):
        ftype = self._function_type(callee)
        super().__init__(register_type(ftype.ret), (callee, *args), name)

    @staticmethod
    def _function_type(callee: Value) -> FunctionType:
        t = callee.type
        if isinstance(t, FunctionType):
            return t
        if isinstance(t, PointerType) and isinstance(t.pointee, FunctionType):
            return t.pointee
        raise IRError(f"call to non-function value of type {t}")

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> List[Value]:
        return self.operands[1:]

    @property
    def is_indirect(self) -> bool:
        from repro.ir.module import Function
        return not isinstance(self.callee, Function)


class Branch(Instruction):
    """Conditional branch ``br cond, then_block, else_block``."""

    opcode = "br"

    def __init__(self, cond: Value, then_block, else_block):
        super().__init__(VOID, (cond,))
        self.then_block = then_block
        self.else_block = else_block

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def targets(self) -> list:
        return [self.then_block, self.else_block]


class Jump(Instruction):
    """Unconditional branch ``jmp block``."""

    opcode = "jmp"

    def __init__(self, target):
        super().__init__(VOID, ())
        self.target = target

    @property
    def targets(self) -> list:
        return [self.target]


class Ret(Instruction):
    """``ret v`` or ``ret void``."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, (value,) if value is not None else ())

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    @property
    def targets(self) -> list:
        return []


class Unreachable(Instruction):
    """Marks statically unreachable control flow."""

    opcode = "unreachable"

    def __init__(self):
        super().__init__(VOID, ())

    @property
    def targets(self) -> list:
        return []


class Phi(Instruction):
    """SSA phi node: selects a value based on the predecessor block."""

    opcode = "phi"

    def __init__(self, type: IRType, name: str = ""):
        super().__init__(register_type(type), (), name)
        self.incoming_blocks: List = []

    def add_incoming(self, value: Value, block) -> None:
        self._append_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incomings(self) -> List[Tuple[Value, object]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block) -> Value:
        for value, b in self.incomings:
            if b is block:
                return value
        raise IRError(f"phi {self.short()} has no incoming for {block}")

    def remove_incoming(self, block) -> None:
        """Drop every incoming entry arriving from ``block`` (used when
        a CFG edge is deleted)."""
        keep = [(v, b) for v, b in self.incomings if b is not block]
        self.drop_operands()
        self.incoming_blocks = []
        for value, b in keep:
            self.add_incoming(value, b)


class Cast(Instruction):
    """Type conversion (``bitcast``, ``zext``, ``trunc``, ...)."""

    opcode = "cast"

    def __init__(self, kind: str, value: Value, to_type: IRType,
                 name: str = ""):
        if kind not in CAST_KINDS:
            raise IRError(f"unknown cast kind {kind!r}")
        super().__init__(register_type(to_type), (value,), name)
        self.kind = kind
        self.to_type = to_type

    @property
    def value(self) -> Value:
        return self.operands[0]


class Select(Instruction):
    """``select cond, a, b`` — branchless conditional value."""

    opcode = "select"

    def __init__(self, cond: Value, a: Value, b: Value, name: str = ""):
        super().__init__(register_type(a.type), (cond, a, b), name)

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]
