"""Step-based IR interpreter with a simulated flat address space.

This is the abstract machine of paper §2.2: typed registers plus a
memory.  Three properties matter for the reproduction:

* **Step-based execution contexts.**  Each simulated thread is an
  :class:`ExecutionContext` advanced one instruction at a time, so a
  scheduler can interleave threads deterministically.  The Figure 3
  experiment *requires* this: it demonstrates the data-flow-analysis
  failure by driving two threads through a specific interleaving.

* **Region-tagged memory.**  Every allocation lives in a region
  (``unsafe`` or an enclave).  A pluggable access policy implements
  the SGX isolation semantics (normal mode cannot touch enclaves,
  enclave mode cannot touch other enclaves — paper §2.1), and access
  observers feed the cost model.

* **External function registry.**  Calls to declarations dispatch to
  Python callables, which is how libc stand-ins (``malloc``,
  ``printf``, ``memcpy``, ...), threading and the Privagic runtime
  primitives (``spawn`` / ``cont`` / ``wait``) are provided.  An
  external may return :data:`BLOCK` to make the calling context retry
  later (how ``wait`` blocks on an empty channel).
"""

from __future__ import annotations

import bisect
import os
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import IRError, RuntimeFault
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Cmp,
    GEP,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.printer import print_instruction
from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    IRType,
    PointerType,
    StructType,
)
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value

#: Sentinel returned by an external function to block the caller; the
#: context will re-execute the same call on its next step.
BLOCK = object()


class PushCall:
    """Returned by an external function to run an IR function *inside*
    the calling context before the external call completes.

    This is how the Privagic runtime implements trampolines (paper
    §7.3.2): a blocked ``wait`` that finds a ``spawn`` message in its
    queue starts the spawned chunk in place, then retries the wait.
    When ``replay`` is true the external call re-executes after the
    pushed function returns; otherwise the pushed function's result
    becomes the call's result.
    """

    def __init__(self, function, args, replay: bool = True):
        self.function = function
        self.args = list(args)
        self.replay = replay
        #: Optional callback receiving the pushed function's result.
        self.on_return = None

#: Region name of ordinary (non-enclave) memory.
UNSAFE_REGION = "unsafe"

#: Sentinel distinguishing "slot not mapped" from a stored None.
_UNMAPPED_SLOT = object()


def enclave_region(color: str) -> str:
    """Region name of the enclave with the given color."""
    return f"enclave:{color}"


class Allocation:
    """One allocated object in the simulated address space."""

    __slots__ = ("base", "size", "region", "label", "live")

    def __init__(self, base: int, size: int, region: str, label: str):
        self.base = base
        self.size = size
        self.region = region
        self.label = label
        self.live = True

    def __repr__(self) -> str:
        return (f"<Allocation {self.label} @{self.base} "
                f"size={self.size} region={self.region}>")


class Memory:
    """Slot-granular simulated memory.

    Addresses are integers; each address holds one scalar (int, float
    or pointer).  Address 0 is the null pointer and never allocated.
    """

    def __init__(self):
        self._slots: Dict[int, object] = {}
        self._next = 0x1000
        self._bases: List[int] = []
        self._allocs: List[Allocation] = []

    def alloc(self, size: int, region: str = UNSAFE_REGION,
              label: str = "") -> int:
        if size < 0:
            raise RuntimeFault(f"negative allocation size {size}")
        base = self._next
        # Keep a guard slot between objects so off-by-one writes fault.
        self._next += max(size, 1) + 1
        allocation = Allocation(base, size, region, label)
        index = bisect.bisect_left(self._bases, base)
        self._bases.insert(index, base)
        self._allocs.insert(index, allocation)
        for i in range(size):
            self._slots[base + i] = 0
        return base

    def free(self, addr: int) -> None:
        allocation = self.allocation_at(addr)
        if allocation.base != addr:
            raise RuntimeFault(f"free of interior pointer {addr}")
        allocation.live = False
        for i in range(allocation.size):
            self._slots.pop(allocation.base + i, None)

    def allocation_at(self, addr: int) -> Allocation:
        index = bisect.bisect_right(self._bases, addr) - 1
        if index >= 0:
            allocation = self._allocs[index]
            if allocation.live and \
                    allocation.base <= addr < allocation.base + allocation.size:
                return allocation
        raise RuntimeFault(f"wild address {addr}")

    def region_of(self, addr: int) -> str:
        return self.allocation_at(addr).region

    def read(self, addr: int) -> object:
        if addr not in self._slots:
            self.allocation_at(addr)  # raise a precise fault
            raise RuntimeFault(f"read of unmapped address {addr}")
        return self._slots[addr]

    def write(self, addr: int, value: object) -> None:
        if addr not in self._slots:
            self.allocation_at(addr)
            raise RuntimeFault(f"write to unmapped address {addr}")
        self._slots[addr] = value

    def live_allocations(self) -> List[Allocation]:
        return [a for a in self._allocs if a.live]

    def region_slots(self, region: str) -> int:
        return sum(a.size for a in self._allocs
                   if a.live and a.region == region)


class Frame:
    """One activation record."""

    __slots__ = ("function", "block", "index", "values", "prev_block",
                 "call_site", "replay", "on_return", "ops")

    def __init__(self, function: Function,
                 call_site: Optional[Instruction] = None,
                 replay: bool = False):
        self.function = function
        self.block: BasicBlock = function.entry_block
        self.index = 0
        self.values: Dict[Value, object] = {}
        self.prev_block: Optional[BasicBlock] = None
        self.call_site = call_site
        #: Pre-decoded closure list of the current block (parallel to
        #: ``block.instructions``); ``None`` under the legacy engine.
        self.ops: Optional[list] = None
        #: When true, returning does not advance the caller — the
        #: caller re-executes its current (external-call) instruction.
        self.replay = replay
        #: Optional callback invoked with the return value when this
        #: frame returns (the runtime's trampoline reply, §7.3.2).
        self.on_return = None


class ExecutionContext:
    """A simulated thread: a call stack advanced step by step.

    ``mode`` is the simulated processor mode: ``None`` for normal mode
    or an enclave color for enclave mode.  The runtime's per-enclave
    worker threads are contexts whose mode is their enclave.
    """

    _next_id = 1

    def __init__(self, machine: "Machine", function: Function,
                 args: Sequence[object] = (), mode: Optional[str] = None,
                 name: str = ""):
        self.machine = machine
        self.ctx_id = ExecutionContext._next_id
        ExecutionContext._next_id += 1
        self.name = name or f"ctx{self.ctx_id}"
        self.mode = mode
        self.stack: List[Frame] = []
        self.finished = False
        self.result: object = None
        self.steps = 0
        self.trap: Optional[BaseException] = None
        #: Workers set this: an empty stack means idle, not finished.
        self.keep_alive = False
        if function is not None:
            self._push_call(function, args, call_site=None)

    @property
    def idle(self) -> bool:
        return not self.stack and not self.finished

    # -- call management -------------------------------------------------------

    def _push_call(self, function: Function, args: Sequence[object],
                   call_site: Optional[Instruction],
                   replay: bool = False) -> None:
        if function.is_declaration:
            raise RuntimeFault(
                f"cannot start context in declaration @{function.name}")
        if len(args) != len(function.args):
            raise RuntimeFault(
                f"@{function.name} called with {len(args)} args, "
                f"expects {len(function.args)}")
        frame = Frame(function, call_site, replay)
        for formal, actual in zip(function.args, args):
            frame.values[formal] = actual
        self.stack.append(frame)

    def push_external_call(self, function: Function,
                           args: Sequence[object]) -> None:
        """Push a call from outside IR execution (used by the runtime
        to start a spawned chunk on an idle worker)."""
        self._push_call(function, args, call_site=None)

    @property
    def frame(self) -> Frame:
        return self.stack[-1]

    # -- value resolution --------------------------------------------------------

    def value_of(self, value: Value) -> object:
        if isinstance(value, Constant):
            return self.machine.constant_value(value)
        if isinstance(value, UndefValue):
            return 0
        if isinstance(value, GlobalVariable):
            return self.machine.global_address(value)
        if isinstance(value, Function):
            return self.machine.function_address(value)
        frame = self.frame
        if value in frame.values:
            return frame.values[value]
        raise RuntimeFault(
            f"{self.name}: use of undefined value {value.short()} in "
            f"@{frame.function.name}")

    # -- stepping ------------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction (or retry a blocked external call)."""
        if self.finished or not self.stack:
            return
        frame = self.frame
        if frame.index >= len(frame.block.instructions):
            raise RuntimeFault(
                f"{self.name}: fell off block {frame.block.name} in "
                f"@{frame.function.name}")
        instr = frame.block.instructions[frame.index]
        try:
            advanced = self._execute(frame, instr)
        except RuntimeFault:
            self.finished = True
            raise
        if advanced:
            self.steps += 1
            self.machine.total_steps += 1

    def run_burst(self, limit: int, contexts) -> Tuple[int, bool]:
        """Step up to ``limit`` times; stop when blocked, finished,
        idle, or the machine's context list changes (a spawn).

        This is the schedulers' fast path for a *lone* runnable
        context: the resulting step sequence is exactly what
        round-robin over that single context would produce, minus the
        per-round bookkeeping.  Returns ``(attempts, advanced_any)``.
        """
        tracer = self.machine.tracer
        t0 = tracer.now_us() if tracer is not None else 0.0
        start_steps = self.steps
        n_ctx = len(contexts)
        attempts = 0
        advanced_any = False
        while attempts < limit and not self.finished and self.stack:
            before = self.steps
            attempts += 1
            self.step()
            if self.steps == before:
                break
            advanced_any = True
            if len(contexts) != n_ctx:
                break
        if tracer is not None and self.steps > start_steps:
            tracer.step_burst(self.name, self.mode,
                              self.steps - start_steps, t0)
        return attempts, advanced_any

    def _execute(self, frame: Frame, instr: Instruction) -> bool:
        """Execute ``instr``; return False if the context blocked."""
        machine = self.machine

        if isinstance(instr, Phi):
            # Execute the whole phi group atomically against prev_block.
            block = frame.block
            phis = block.phis
            values = [self.value_of(p.incoming_for(frame.prev_block))
                      for p in phis]
            for phi, v in zip(phis, values):
                frame.values[phi] = v
            frame.index = block.first_non_phi_index()
            return True

        if isinstance(instr, Alloca):
            region = machine.stack_region(self)
            addr = machine.memory.alloc(
                instr.allocated_type.size_slots(), region,
                f"alloca:{instr.name or 'tmp'}")
            frame.values[instr] = addr
            frame.index += 1
            return True

        if isinstance(instr, Load):
            addr = self.value_of(instr.ptr)
            frame.values[instr] = machine.mem_read(self, addr)
            frame.index += 1
            return True

        if isinstance(instr, Store):
            addr = self.value_of(instr.ptr)
            machine.mem_write(self, addr, self.value_of(instr.value))
            frame.index += 1
            return True

        if isinstance(instr, BinOp):
            lhs = self.value_of(instr.lhs)
            rhs = self.value_of(instr.rhs)
            frame.values[instr] = _apply_binop(instr, lhs, rhs)
            frame.index += 1
            return True

        if isinstance(instr, Cmp):
            lhs = self.value_of(instr.lhs)
            rhs = self.value_of(instr.rhs)
            frame.values[instr] = _apply_cmp(instr.predicate, lhs, rhs)
            frame.index += 1
            return True

        if isinstance(instr, GEP):
            frame.values[instr] = self._gep_address(instr)
            frame.index += 1
            return True

        if isinstance(instr, Cast):
            frame.values[instr] = _apply_cast(instr, self.value_of(instr.value))
            frame.index += 1
            return True

        if isinstance(instr, Select):
            cond = self.value_of(instr.cond)
            chosen = instr.true_value if cond else instr.false_value
            frame.values[instr] = self.value_of(chosen)
            frame.index += 1
            return True

        if isinstance(instr, Call):
            return self._execute_call(frame, instr)

        if isinstance(instr, Branch):
            cond = self.value_of(instr.cond)
            target = instr.then_block if cond else instr.else_block
            self._enter_block(frame, target)
            return True

        if isinstance(instr, Jump):
            self._enter_block(frame, instr.target)
            return True

        if isinstance(instr, Ret):
            result = (self.value_of(instr.value)
                      if instr.value is not None else None)
            self._do_return(result)
            return True

        if isinstance(instr, Unreachable):
            raise RuntimeFault(
                f"{self.name}: reached unreachable in "
                f"@{frame.function.name}")

        raise RuntimeFault(f"cannot execute {print_instruction(instr)}")

    def _enter_block(self, frame: Frame, target: BasicBlock) -> None:
        frame.prev_block = frame.block
        frame.block = target
        frame.index = 0

    def _do_return(self, result: object) -> None:
        frame = self.stack.pop()
        if frame.on_return is not None:
            frame.on_return(result)
        if not self.stack:
            if self.keep_alive:
                self.result = result  # worker goes idle, stays alive
            else:
                self.finished = True
                self.result = result
            return
        if frame.replay:
            # A trampoline frame: the caller re-executes its current
            # (external wait) instruction.
            return
        caller = self.frame
        call = frame.call_site
        if call is not None and not call.is_void:
            caller.values[call] = result
        if call is not None:
            caller.index += 1

    def _gep_address(self, instr: GEP) -> int:
        addr = self.value_of(instr.ptr)
        current: IRType = instr.ptr.type.pointee
        indices = instr.indices
        # Leading index: whole objects of the pointee type.
        lead = self.value_of(indices[0])
        addr += int(lead) * current.size_slots()
        for idx in indices[1:]:
            i = int(self.value_of(idx))
            if isinstance(current, StructType):
                addr += current.field_offset_slots(i)
                current = current.fields[i].type
            elif isinstance(current, ArrayType):
                addr += i * current.element.size_slots()
                current = current.element
            else:
                raise RuntimeFault(f"gep into scalar type {current}")
        return addr

    def _execute_call(self, frame: Frame, instr: Call) -> bool:
        machine = self.machine
        callee = instr.callee
        if not isinstance(callee, Function):
            # Indirect call: resolve the function address.
            addr = self.value_of(callee)
            callee = machine.function_at(addr)
        if callee.is_declaration:
            # A forward declaration may be satisfied by a definition in
            # another loaded module (chunks reference each other this
            # way); resolve by name before falling back to externals.
            defined = machine._functions_by_name.get(callee.name)
            if defined is not None and not defined.is_declaration:
                callee = defined
        args = [self.value_of(a) for a in instr.args]
        if callee.is_declaration:
            handler = machine.externals.get(callee.name)
            if handler is None:
                raise RuntimeFault(
                    f"{self.name}: call to unknown external "
                    f"@{callee.name}")
            result = handler(machine, self, args)
            if result is BLOCK:
                machine.blocked_steps += 1
                return False
            if isinstance(result, PushCall):
                self._push_call(result.function, result.args,
                                call_site=instr if not result.replay
                                else None,
                                replay=result.replay)
                if result.on_return is not None:
                    self.stack[-1].on_return = result.on_return
                return True
            if not instr.is_void:
                frame.values[instr] = result
            frame.index += 1
            return True
        self._push_call(callee, args, call_site=instr)
        return True

    def __repr__(self) -> str:
        state = "done" if self.finished else (
            f"@{self.frame.function.name}" if self.stack else "empty")
        return f"<ExecutionContext {self.name} mode={self.mode} {state}>"


# -- pure-operation helpers ------------------------------------------------------

_INT64_MASK = (1 << 64) - 1


def _wrap_signed(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _trunc_div(a: int, b: int) -> int:
    """C-style truncated integer division (exact — no float detour,
    which would corrupt 64-bit hash values)."""
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def _apply_binop(instr: BinOp, lhs, rhs):
    op = instr.op
    if op.startswith("f"):
        lhs, rhs = float(lhs), float(rhs)
        if op == "fadd":
            return lhs + rhs
        if op == "fsub":
            return lhs - rhs
        if op == "fmul":
            return lhs * rhs
        if op == "fdiv":
            if rhs == 0.0:
                raise RuntimeFault("float division by zero")
            return lhs / rhs
    lhs, rhs = int(lhs), int(rhs)
    if op == "add":
        result = lhs + rhs
    elif op == "sub":
        result = lhs - rhs
    elif op == "mul":
        result = lhs * rhs
    elif op in ("sdiv", "udiv"):
        if rhs == 0:
            raise RuntimeFault("integer division by zero")
        result = _trunc_div(lhs, rhs) if op == "sdiv" else (
            (lhs & _INT64_MASK) // (rhs & _INT64_MASK))
    elif op in ("srem", "urem"):
        if rhs == 0:
            raise RuntimeFault("integer remainder by zero")
        result = (lhs - _trunc_div(lhs, rhs) * rhs) if op == "srem" \
            else ((lhs & _INT64_MASK) % (rhs & _INT64_MASK))
    elif op == "and":
        result = lhs & rhs
    elif op == "or":
        result = lhs | rhs
    elif op == "xor":
        result = lhs ^ rhs
    elif op == "shl":
        result = lhs << (rhs & 63)
    elif op == "lshr":
        result = (lhs & _INT64_MASK) >> (rhs & 63)
    elif op == "ashr":
        result = lhs >> (rhs & 63)
    else:
        raise RuntimeFault(f"unhandled binop {op}")
    bits = instr.type.bits if isinstance(instr.type, IntType) else 64
    return _wrap_signed(result, bits)


def _apply_cmp(predicate: str, lhs, rhs) -> int:
    if predicate.startswith("f"):
        lhs, rhs = float(lhs), float(rhs)
        predicate = predicate[1:]
    else:
        lhs, rhs = int(lhs), int(rhs)
        if predicate.startswith("u"):
            lhs &= _INT64_MASK
            rhs &= _INT64_MASK
            predicate = "s" + predicate[1:]
        if predicate.startswith("s"):
            predicate = predicate[1:]
    table = {
        "eq": lhs == rhs, "ne": lhs != rhs,
        "lt": lhs < rhs, "le": lhs <= rhs,
        "gt": lhs > rhs, "ge": lhs >= rhs,
    }
    try:
        return 1 if table[predicate] else 0
    except KeyError:
        raise RuntimeFault(f"unhandled predicate {predicate}")


def _apply_cast(instr: Cast, value):
    kind = instr.kind
    if kind in ("bitcast", "inttoptr", "ptrtoint"):
        return value
    if kind == "trunc":
        bits = instr.to_type.bits  # type: ignore[attr-defined]
        return _wrap_signed(int(value), bits)
    if kind in ("zext", "sext"):
        return int(value)
    if kind == "sitofp":
        return float(value)
    if kind == "fptosi":
        return int(value)
    raise RuntimeFault(f"unhandled cast {kind}")


# -- the machine ----------------------------------------------------------------

ExternalFn = Callable[["Machine", ExecutionContext, List[object]], object]
AccessHook = Callable[[ExecutionContext, int, str, str], None]

#: Known execution engines: ``decoded`` pre-compiles each function
#: into closures (repro.ir.engine); ``traced`` additionally compiles
#: hot segments/loops into generated superinstructions
#: (repro.ir.trace) with guarded deopt back to the decoded tier;
#: ``legacy`` walks the isinstance dispatch chain above.  All three
#: are step-observably identical.
ENGINES = ("decoded", "traced", "legacy")

#: Bound on the per-machine decoded-code cache.  Compiled closures
#: strongly reference the IR they execute (instructions -> parent
#: blocks -> function), so weak keying can never collect an entry;
#: insertion-order eviction at this cap is what keeps a long-running
#: machine that replaces or respecializes functions from retaining
#: every dead Function body forever.
DECODE_CACHE_CAP = 256

#: Engine used when neither the ``Machine(engine=...)`` argument nor
#: the ``REPRO_ENGINE`` environment variable selects one.
DEFAULT_ENGINE = "decoded"


class Machine:
    """A simulated machine running one or more modules.

    Parameters
    ----------
    modules:
        The module(s) to load.  Functions and globals from all modules
        share one namespace, mirroring a linked executable; each module
        may declare a *placement* color (``module.placement``) in which
        case its globals are allocated in that enclave's region.
    engine:
        ``"decoded"`` (default) pre-compiles each function into
        directly executable closures; ``"traced"`` builds on the
        decoded tier and additionally compiles hot loops/segments
        into generated superinstructions with guarded deopt;
        ``"legacy"`` re-decodes every instruction per step.
        ``REPRO_ENGINE`` overrides the default.
    """

    def __init__(self, modules, externals: Optional[Dict[str,
                                                         ExternalFn]] = None,
                 engine: Optional[str] = None):
        if isinstance(modules, Module):
            modules = [modules]
        self.modules: List[Module] = list(modules)
        if engine is None:
            engine = os.environ.get("REPRO_ENGINE") or DEFAULT_ENGINE
        if engine not in ENGINES:
            raise IRError(f"unknown execution engine {engine!r}; "
                          f"expected one of {ENGINES}")
        self.engine = engine
        #: Per-Function pre-decoded code (managed by repro.ir.engine):
        #: an insertion-ordered dict bounded at ``_decoded_cache_cap``
        #: entries, oldest evicted first.
        self._decoded_cache: "OrderedDict[Function, object]" = OrderedDict()
        self._decoded_cache_cap = DECODE_CACHE_CAP
        #: Cached decoded code is refingerprinted whenever this epoch
        #: advances (every spawn, i.e. every run boundary) — per-call
        #: lookups inside one run skip the O(instrs) structural hash.
        self._decode_epoch = 0
        #: Trace-tier counters (managed by repro.ir.trace; published
        #: by the observability layer as ``interp.trace.*``).
        self.trace_stats: Dict[str, int] = {
            "compiled": 0, "entries": 0, "deopts": 0, "steps": 0}
        self.memory = Memory()
        self.externals: Dict[str, ExternalFn] = dict(DEFAULT_EXTERNALS)
        if externals:
            self.externals.update(externals)
        self.contexts: List[ExecutionContext] = []
        self.output: List[str] = []
        self.total_steps = 0
        self.blocked_steps = 0
        #: Hooks called as hook(ctx, addr, region, "read"/"write").
        self.access_hooks: List[AccessHook] = []
        #: Policy called before each access; may raise SGXAccessViolation.
        self.access_policy: Optional[AccessHook] = None
        #: Optional :class:`repro.obs.tracer.Tracer` recording
        #: step-burst events; guarded like ``access_hooks`` (one
        #: ``is not None`` check per burst, never per step).
        self.tracer = None

        self._globals: Dict[int, int] = {}          # id(gv) -> address
        self._functions_by_name: Dict[str, Function] = {}
        self._function_addr: Dict[str, int] = {}
        self._addr_function: Dict[int, Function] = {}
        self._string_cache: Dict[str, int] = {}
        self._mutexes: Dict[int, Optional[int]] = {}
        self._load_modules()

    # -- loading ------------------------------------------------------------------

    def _load_modules(self) -> None:
        for module in self.modules:
            placement = getattr(module, "placement", None)
            region = (enclave_region(placement)
                      if placement else UNSAFE_REGION)
            for gv in module.globals.values():
                gv_region = region
                if gv.color is not None:
                    gv_region = enclave_region(gv.color)
                self._alloc_global(gv, gv_region)
            for fn in module.functions.values():
                existing = self._functions_by_name.get(fn.name)
                if existing is None or existing.is_declaration:
                    self._functions_by_name[fn.name] = fn

    def _alloc_global(self, gv: GlobalVariable, region: str) -> None:
        size = gv.value_type.size_slots()
        addr = self.memory.alloc(size, region, f"global:@{gv.name}")
        self._globals[id(gv)] = addr
        init = gv.initializer
        if init is not None:
            self._write_initializer(addr, gv.value_type, init)

    def _write_initializer(self, addr: int, type: IRType,
                           init: Constant) -> None:
        if isinstance(init.value, str):
            for i, ch in enumerate(init.value):
                self.memory.write(addr + i, ord(ch))
            if isinstance(type, ArrayType) and len(init.value) < type.count:
                self.memory.write(addr + len(init.value), 0)
        elif isinstance(init.value, (list, tuple)):
            offset = 0
            element = type.element if isinstance(type, ArrayType) else None
            for item in init.value:
                self.memory.write(addr + offset, item)
                offset += element.size_slots() if element else 1
        else:
            self.memory.write(addr, init.value)

    # -- symbol resolution ----------------------------------------------------------

    def function_named(self, name: str) -> Function:
        try:
            return self._functions_by_name[name]
        except KeyError:
            raise RuntimeFault(f"no function @{name} loaded")

    def global_address(self, gv: GlobalVariable) -> int:
        try:
            return self._globals[id(gv)]
        except KeyError:
            # Same-named global from another module copy (after cloning
            # / partitioning): resolve by name.
            for module in self.modules:
                candidate = module.globals.get(gv.name)
                if candidate is not None and id(candidate) in self._globals:
                    return self._globals[id(candidate)]
            raise RuntimeFault(f"global @{gv.name} not loaded")

    def function_address(self, fn: Function) -> int:
        name = fn.name
        if name not in self._function_addr:
            addr = self.memory.alloc(1, UNSAFE_REGION, f"code:@{name}")
            self._function_addr[name] = addr
            self._addr_function[addr] = self._functions_by_name.get(name, fn)
        return self._function_addr[name]

    def function_at(self, addr: int) -> Function:
        try:
            return self._addr_function[addr]
        except KeyError:
            raise RuntimeFault(f"indirect call to non-function address {addr}")

    def constant_value(self, const: Constant) -> object:
        if isinstance(const.value, str):
            return self.intern_string(const.value)
        return const.value

    def intern_string(self, text: str) -> int:
        """Materialise a string constant in unsafe memory; returns its
        address (characters + NUL, one slot each)."""
        if text not in self._string_cache:
            addr = self.memory.alloc(len(text) + 1, UNSAFE_REGION,
                                     f"str:{text[:16]!r}")
            for i, ch in enumerate(text):
                self.memory.write(addr + i, ord(ch))
            self.memory.write(addr + len(text), 0)
            self._string_cache[text] = addr
        return self._string_cache[text]

    # -- memory access with policy/hooks ----------------------------------------------

    def mem_read(self, ctx: ExecutionContext, addr: int) -> object:
        # Un-observed runs skip the region lookup entirely; the read
        # itself still faults precisely on wild/unmapped addresses.
        if self.access_policy is None and not self.access_hooks:
            return self.memory.read(addr)
        region = self.memory.region_of(addr)
        if self.access_policy is not None:
            self.access_policy(ctx, addr, region, "read")
        for hook in self.access_hooks:
            hook(ctx, addr, region, "read")
        return self.memory.read(addr)

    def mem_write(self, ctx: ExecutionContext, addr: int,
                  value: object) -> None:
        if self.access_policy is None and not self.access_hooks:
            self.memory.write(addr, value)
            return
        region = self.memory.region_of(addr)
        if self.access_policy is not None:
            self.access_policy(ctx, addr, region, "write")
        for hook in self.access_hooks:
            hook(ctx, addr, region, "write")
        self.memory.write(addr, value)

    def stack_region(self, ctx: ExecutionContext) -> str:
        """Region for stack allocations of a context: its enclave when
        in enclave mode, unsafe memory otherwise."""
        return enclave_region(ctx.mode) if ctx.mode else UNSAFE_REGION

    # -- context / scheduling -----------------------------------------------------------

    def context_class(self):
        """The :class:`ExecutionContext` subclass of the selected
        engine."""
        if self.engine == "decoded":
            from repro.ir.engine import DecodedExecutionContext
            return DecodedExecutionContext
        if self.engine == "traced":
            from repro.ir.trace import TracedExecutionContext
            return TracedExecutionContext
        return ExecutionContext

    def new_context(self, function, args: Sequence[object] = (),
                    mode: Optional[str] = None,
                    name: str = "") -> ExecutionContext:
        """Create (but do not register) a context on this machine's
        engine.  ``function`` may be ``None`` for an idle worker."""
        return self.context_class()(self, function, args, mode, name)

    def invalidate_decoded(self) -> None:
        """Drop all pre-decoded code.  Call after mutating loaded IR
        (running passes, splicing instructions) mid-machine-lifetime;
        loading and partitioning before the first run needs nothing."""
        self._decoded_cache.clear()

    def spawn(self, function, args: Sequence[object] = (),
              mode: Optional[str] = None, name: str = "") -> ExecutionContext:
        if isinstance(function, str):
            function = self.function_named(function)
        # A spawn is a run boundary: force cached decoded code to be
        # refingerprinted so IR mutated since the last run re-decodes.
        self._decode_epoch += 1
        ctx = self.new_context(function, args, mode, name)
        self.contexts.append(ctx)
        return ctx

    def run(self, max_steps: int = 2_000_000,
            schedule: Optional[Sequence[int]] = None) -> None:
        """Run all contexts to completion.

        ``schedule`` optionally fixes the interleaving: a sequence of
        context indices (into :attr:`contexts`); each entry steps that
        context once.  After the schedule is exhausted (or if none is
        given) contexts are stepped round-robin.
        """
        steps = 0
        if schedule:
            for index in schedule:
                ctx = self.contexts[index]
                if not ctx.finished:
                    ctx.step()
                steps += 1
                if steps > max_steps:
                    raise RuntimeFault("schedule exceeded max_steps")
        while True:
            alive = [c for c in self.contexts if not c.finished]
            if not alive:
                return
            if len(alive) == 1:
                # A lone runnable context: burst it without the
                # per-round list rebuild.  Same step sequence, same
                # deadlock / max_steps faults as the general loop.
                ctx = alive[0]
                attempts, progressed = ctx.run_burst(
                    max_steps - steps + 1, self.contexts)
                steps += attempts
                if steps > max_steps:
                    raise RuntimeFault(
                        f"execution exceeded {max_steps} steps")
                if not progressed and not ctx.finished:
                    raise RuntimeFault(
                        "deadlock: every live context is blocked")
                continue
            progressed = False
            for ctx in alive:
                if ctx.finished:
                    continue
                before = ctx.steps
                ctx.step()
                progressed = progressed or ctx.steps > before
                steps += 1
                if steps > max_steps:
                    raise RuntimeFault(
                        f"execution exceeded {max_steps} steps")
            if not progressed:
                raise RuntimeFault(
                    "deadlock: every live context is blocked")

    def run_function(self, name: str, args: Sequence[object] = (),
                     mode: Optional[str] = None,
                     max_steps: int = 2_000_000) -> object:
        """Convenience: spawn ``name`` and run everything; returns the
        context's result."""
        ctx = self.spawn(name, args, mode)
        self.run(max_steps=max_steps)
        return ctx.result

    # -- C-string helpers -------------------------------------------------------------

    def read_cstring(self, addr: int, limit: int = 4096) -> str:
        # Hot in the partitioned runtime (every protocol message names
        # its chunk / color by C string): read straight out of the
        # slot dict, falling back to Memory.read only to raise its
        # precise fault on unmapped addresses.
        slots = self.memory._slots
        chars = []
        for i in range(addr, addr + limit):
            c = slots.get(i, _UNMAPPED_SLOT)
            if c is _UNMAPPED_SLOT:
                c = self.memory.read(i)
            if c == 0:
                break
            chars.append(chr(int(c)))
        return "".join(chars)

    @property
    def stdout(self) -> str:
        return "".join(self.output)


# -- default external functions (mini-libc stand-ins) --------------------------------


def _ext_malloc(machine: Machine, ctx: ExecutionContext, args):
    size = int(args[0])
    region = machine.stack_region(ctx)
    return machine.memory.alloc(size, region, "heap")


def _ext_malloc_in(machine: Machine, ctx: ExecutionContext, args):
    """__privagic_alloc(color_string_addr, size): allocate in a given
    enclave region (used by the §7.2 multi-color struct rewriting)."""
    color = machine.read_cstring(int(args[0]))
    size = int(args[1])
    region = enclave_region(color) if color else UNSAFE_REGION
    return machine.memory.alloc(size, region, f"heap:{color}")


def _ext_free(machine: Machine, ctx: ExecutionContext, args):
    addr = int(args[0])
    if addr:
        machine.memory.free(addr)
    return None


def _ext_memcpy(machine: Machine, ctx: ExecutionContext, args):
    dst, src, n = int(args[0]), int(args[1]), int(args[2])
    for i in range(n):
        machine.mem_write(ctx, dst + i, machine.mem_read(ctx, src + i))
    return dst


def _ext_memset(machine: Machine, ctx: ExecutionContext, args):
    dst, byte, n = int(args[0]), int(args[1]), int(args[2])
    for i in range(n):
        machine.mem_write(ctx, dst + i, byte)
    return dst


def _ext_strncpy(machine: Machine, ctx: ExecutionContext, args):
    dst, src, n = int(args[0]), int(args[1]), int(args[2])
    i = 0
    while i < n:
        c = machine.mem_read(ctx, src + i)
        machine.mem_write(ctx, dst + i, c)
        i += 1
        if c == 0:
            break
    return dst


def _ext_strlen(machine: Machine, ctx: ExecutionContext, args):
    addr = int(args[0])
    n = 0
    while machine.mem_read(ctx, addr + n) != 0:
        n += 1
    return n


def _ext_strcmp(machine: Machine, ctx: ExecutionContext, args):
    a, b = int(args[0]), int(args[1])
    i = 0
    while True:
        ca = int(machine.mem_read(ctx, a + i))
        cb = int(machine.mem_read(ctx, b + i))
        if ca != cb:
            return -1 if ca < cb else 1
        if ca == 0:
            return 0
        i += 1


def _format_printf(machine: Machine, ctx: ExecutionContext,
                   fmt: str, args: List[object]) -> str:
    out = []
    it = iter(args)
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        # Skip width/precision flags.
        while i < len(fmt) and (fmt[i].isdigit() or fmt[i] in ".-+l"):
            i += 1
        if i >= len(fmt):
            break
        spec = fmt[i]
        i += 1
        if spec == "%":
            out.append("%")
        elif spec in "du":
            out.append(str(int(next(it))))
        elif spec == "x":
            out.append(format(int(next(it)), "x"))
        elif spec == "f":
            out.append(f"{float(next(it)):.6f}")
        elif spec == "c":
            out.append(chr(int(next(it))))
        elif spec == "s":
            out.append(machine.read_cstring(int(next(it))))
        elif spec == "p":
            out.append(hex(int(next(it))))
        else:
            out.append(spec)
    return "".join(out)


def _ext_printf(machine: Machine, ctx: ExecutionContext, args):
    fmt = machine.read_cstring(int(args[0]))
    text = _format_printf(machine, ctx, fmt, args[1:])
    machine.output.append(text)
    return len(text)


def _ext_puts(machine: Machine, ctx: ExecutionContext, args):
    machine.output.append(machine.read_cstring(int(args[0])) + "\n")
    return 0


def _ext_putchar(machine: Machine, ctx: ExecutionContext, args):
    machine.output.append(chr(int(args[0])))
    return int(args[0])


def _ext_abort(machine: Machine, ctx: ExecutionContext, args):
    raise RuntimeFault(f"{ctx.name}: abort() called")


def _ext_thread_create(machine: Machine, ctx: ExecutionContext, args):
    fn = machine.function_at(int(args[0]))
    arg = args[1] if len(args) > 1 else 0
    child = machine.spawn(fn, [arg], mode=ctx.mode,
                          name=f"{ctx.name}.child")
    return child.ctx_id


def _ext_thread_join(machine: Machine, ctx: ExecutionContext, args):
    tid = int(args[0])
    for other in machine.contexts:
        if other.ctx_id == tid:
            return None if other.finished else BLOCK
    raise RuntimeFault(f"join of unknown thread {tid}")


def _ext_mutex_lock(machine: Machine, ctx: ExecutionContext, args):
    key = int(args[0])
    owner = machine._mutexes.get(key)
    if owner is None:
        machine._mutexes[key] = ctx.ctx_id
        return 0
    if owner == ctx.ctx_id:
        raise RuntimeFault(f"{ctx.name}: recursive mutex_lock")
    return BLOCK


def _ext_mutex_unlock(machine: Machine, ctx: ExecutionContext, args):
    key = int(args[0])
    if machine._mutexes.get(key) != ctx.ctx_id:
        raise RuntimeFault(f"{ctx.name}: unlock of mutex not held")
    machine._mutexes[key] = None
    return 0


def _ext_hash(machine: Machine, ctx: ExecutionContext, args):
    """A small deterministic integer hash (FNV-style)."""
    value = int(args[0]) & _INT64_MASK
    h = 0xcbf29ce484222325
    for _ in range(8):
        h ^= value & 0xff
        h = (h * 0x100000001b3) & _INT64_MASK
        value >>= 8
    return _wrap_signed(h, 64)


DEFAULT_EXTERNALS: Dict[str, ExternalFn] = {
    "malloc": _ext_malloc,
    "__privagic_alloc": _ext_malloc_in,
    "free": _ext_free,
    "memcpy": _ext_memcpy,
    "memset": _ext_memset,
    "strncpy": _ext_strncpy,
    "strlen": _ext_strlen,
    "strcmp": _ext_strcmp,
    "printf": _ext_printf,
    "puts": _ext_puts,
    "putchar": _ext_putchar,
    "abort": _ext_abort,
    "thread_create": _ext_thread_create,
    "thread_join": _ext_thread_join,
    "mutex_lock": _ext_mutex_lock,
    "mutex_unlock": _ext_mutex_unlock,
    "hash64": _ext_hash,
}
