"""Module / Function / BasicBlock containers, plus function cloning.

A :class:`Function` is itself a value (a pointer to its code) so it
can be stored in memory and called indirectly (paper §6.3).  Function
*attributes* carry the paper's annotations:

* ``"extern"`` — declaration only, body unavailable (§6.3);
* ``"within"`` — available inside every enclave, like the Intel SDK
  mini-libc (§6.3);
* ``"ignore"`` — communication/declassification function (§6.4);
* ``"entry"`` — an entry point of the analysis (§6.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.errors import IRError
from repro.ir.instructions import (
    Branch,
    Call,
    Instruction,
    Jump,
    Phi,
)
from repro.ir.types import FunctionType, IRType, PointerType, StructType
from repro.ir.values import Argument, Constant, GlobalVariable, Value


class BasicBlock:
    """A maximal straight-line sequence of instructions ending in a
    terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- structure -----------------------------------------------------------

    def append(self, instr: Instruction) -> Instruction:
        if self.is_terminated:
            raise IRError(
                f"block {self.name} already terminated; cannot append "
                f"{instr.opcode}")
        instr.parent = self
        self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        instr.parent = self
        self.instructions.insert(index, instr)
        return instr

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    @property
    def phis(self) -> List[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def first_non_phi_index(self) -> int:
        for i, instr in enumerate(self.instructions):
            if not isinstance(instr, Phi):
                return i
        return len(self.instructions)

    # -- CFG edges -----------------------------------------------------------

    @property
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return list(getattr(term, "targets", []))

    @property
    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors]

    def replace_successor(self, old: "BasicBlock",
                          new: "BasicBlock") -> None:
        term = self.terminator
        if isinstance(term, Jump) and term.target is old:
            term.target = new
        elif isinstance(term, Branch):
            if term.then_block is old:
                term.then_block = new
            if term.else_block is old:
                term.else_block = new

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} instrs)>"


class Function(Value):
    """A function definition or declaration."""

    def __init__(self, name: str, ftype: FunctionType,
                 arg_names: Sequence[str] = (),
                 attributes: Iterable[str] = ()):
        super().__init__(PointerType(ftype), name)
        self.ftype = ftype
        self.blocks: List[BasicBlock] = []
        self.attributes: Set[str] = set(attributes)
        self.parent: Optional["Module"] = None
        names = list(arg_names) or [f"arg{i}"
                                    for i in range(len(ftype.params))]
        if len(names) != len(ftype.params):
            raise IRError(
                f"function {name}: {len(names)} argument names for "
                f"{len(ftype.params)} parameters")
        self.args: List[Argument] = [
            Argument(n, t, i) for i, (n, t) in enumerate(zip(names,
                                                             ftype.params))]
        for a in self.args:
            a.parent = self
        #: For specialized versions (paper §6.2): the original function
        #: name and the tuple of argument colors this version assumes.
        self.specialization_of: Optional[str] = None
        self.arg_colors: Optional[tuple] = None
        self._name_counter = 0

    # -- attributes (paper annotations) ---------------------------------------

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def is_extern(self) -> bool:
        return "extern" in self.attributes or self.is_declaration

    @property
    def is_within(self) -> bool:
        return "within" in self.attributes

    @property
    def is_ignore(self) -> bool:
        return "ignore" in self.attributes

    @property
    def is_entry(self) -> bool:
        return "entry" in self.attributes

    # -- structure -----------------------------------------------------------

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no body")
        return self.blocks[0]

    def add_block(self, name: str = "") -> BasicBlock:
        if not name:
            name = f"bb{len(self.blocks)}"
        name = self._unique_block_name(name)
        block = BasicBlock(name, self)
        self.blocks.append(block)
        return block

    def _unique_block_name(self, base: str) -> str:
        existing = {b.name for b in self.blocks}
        if base not in existing:
            return base
        i = 1
        while f"{base}.{i}" in existing:
            i += 1
        return f"{base}.{i}"

    def next_value_name(self, hint: str = "") -> str:
        self._name_counter += 1
        return f"{hint or 't'}{self._name_counter}"

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from list(block.instructions)

    def block_named(self, name: str) -> BasicBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise IRError(f"function {self.name} has no block {name!r}")

    def short(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} @{self.name}>"


class Module:
    """A translation unit: globals, functions and named struct types."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.globals: Dict[str, GlobalVariable] = {}
        self.functions: Dict[str, Function] = {}
        self.structs: Dict[str, StructType] = {}

    # -- declaration ----------------------------------------------------------

    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv.name in self.globals:
            raise IRError(f"duplicate global @{gv.name}")
        self.globals[gv.name] = gv
        return gv

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise IRError(f"duplicate function @{fn.name}")
        fn.parent = self
        self.functions[fn.name] = fn
        return fn

    def add_struct(self, st: StructType) -> StructType:
        existing = self.structs.get(st.name)
        if existing is not None and existing is not st:
            raise IRError(f"duplicate struct %{st.name}")
        self.structs[st.name] = st
        return st

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"module {self.name} has no function @{name}")

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise IRError(f"module {self.name} has no global @{name}")

    def remove_function(self, name: str) -> None:
        self.functions.pop(name, None)

    # -- queries ---------------------------------------------------------------

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def entry_points(self) -> List[Function]:
        """Functions the analysis starts from: explicitly annotated
        ``entry`` functions if any exist, otherwise every defined
        function visible to other projects (paper §6.2 default)."""
        explicit = [f for f in self.functions.values() if f.is_entry]
        if explicit:
            return explicit
        return self.defined_functions()

    def instruction_count(self) -> int:
        return sum(len(b.instructions)
                   for f in self.defined_functions() for b in f.blocks)

    def __repr__(self) -> str:
        return (f"<Module {self.name}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")


def clone_function(fn: Function, new_name: str,
                   arg_types: Optional[Sequence[IRType]] = None,
                   return_maps: bool = False):
    """Deep-copy ``fn`` into a new function named ``new_name``.

    ``arg_types`` optionally overrides the parameter types — the
    specialization step (paper §6.2) uses this to stamp the caller's
    argument colors onto the copy.  The clone is *not* added to any
    module.  With ``return_maps=True`` returns
    ``(clone, value_map, block_map)`` so callers (the partitioner) can
    carry per-instruction analysis facts over to the copy.
    """
    params = list(arg_types) if arg_types is not None else list(
        fn.ftype.params)
    new_ftype = FunctionType(fn.ftype.ret, params, fn.ftype.vararg)
    clone = Function(new_name, new_ftype, [a.name for a in fn.args],
                     fn.attributes)
    value_map: Dict[Value, Value] = {}
    for old_arg, new_arg in zip(fn.args, clone.args):
        value_map[old_arg] = new_arg

    block_map: Dict[BasicBlock, BasicBlock] = {}
    for block in fn.blocks:
        block_map[block] = clone.add_block(block.name)

    def mapped(v: Value) -> Value:
        return value_map.get(v, v)

    # First pass: copy instructions, leaving phi incomings and branch
    # targets for fixup.
    pending_phis: List[tuple] = []
    for block in fn.blocks:
        new_block = block_map[block]
        for instr in block.instructions:
            new_instr = _clone_instruction(instr, mapped, block_map,
                                           pending_phis)
            new_instr.loc = instr.loc
            value_map[instr] = new_instr
            new_block.instructions.append(new_instr)
            new_instr.parent = new_block

    # Second pass: fill phi incomings now that every value is mapped.
    for new_phi, old_phi in pending_phis:
        for value, block in old_phi.incomings:
            new_phi.add_incoming(mapped(value), block_map[block])

    clone._name_counter = fn._name_counter
    if return_maps:
        return clone, value_map, block_map
    return clone


def _clone_instruction(instr: Instruction, mapped, block_map,
                       pending_phis) -> Instruction:
    """Clone one instruction, mapping operands and branch targets."""
    from repro.ir.instructions import (
        Alloca, BinOp, Cast, Cmp, GEP, Load, Ret, Select, Store,
        Unreachable,
    )

    if isinstance(instr, Alloca):
        new = Alloca(instr.allocated_type, instr.name)
    elif isinstance(instr, Load):
        new = Load(mapped(instr.ptr), instr.name)
    elif isinstance(instr, Store):
        new = Store(mapped(instr.value), mapped(instr.ptr))
    elif isinstance(instr, BinOp):
        new = BinOp(instr.op, mapped(instr.lhs), mapped(instr.rhs),
                    instr.name)
    elif isinstance(instr, Cmp):
        new = Cmp(instr.predicate, mapped(instr.lhs), mapped(instr.rhs),
                  instr.name)
    elif isinstance(instr, GEP):
        new = GEP(mapped(instr.ptr), [mapped(i) for i in instr.indices],
                  instr.name)
    elif isinstance(instr, Call):
        new = Call(mapped(instr.callee), [mapped(a) for a in instr.args],
                   instr.name)
    elif isinstance(instr, Branch):
        new = Branch(mapped(instr.cond), block_map[instr.then_block],
                     block_map[instr.else_block])
    elif isinstance(instr, Jump):
        new = Jump(block_map[instr.target])
    elif isinstance(instr, Ret):
        new = Ret(mapped(instr.value) if instr.value is not None else None)
    elif isinstance(instr, Phi):
        new = Phi(instr.type, instr.name)
        pending_phis.append((new, instr))
    elif isinstance(instr, Cast):
        new = Cast(instr.kind, mapped(instr.value), instr.to_type,
                   instr.name)
    elif isinstance(instr, Select):
        new = Select(mapped(instr.cond), mapped(instr.true_value),
                     mapped(instr.false_value), instr.name)
    elif isinstance(instr, Unreachable):
        new = Unreachable()
    else:
        raise IRError(f"cannot clone instruction {instr.opcode}")
    return new
