"""Key-choosing distributions, after the YCSB core generators.

The zipfian generator uses the Gray et al. rejection-inversion
construction that YCSB uses, with the standard constant 0.99; the
scrambled variant hashes the rank so hot keys spread over the key
space (YCSB's default for workload traffic).
"""

from __future__ import annotations

import math
import random
from typing import Optional


class UniformGenerator:
    """Uniform over [0, n)."""

    def __init__(self, n: int, seed: Optional[int] = None):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.n)


class ZipfianGenerator:
    """Zipfian over [0, n) with exponent ``theta`` (YCSB default
    0.99): rank 0 is the most popular item."""

    def __init__(self, n: int, theta: float = 0.99,
                 seed: Optional[int] = None):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._eta = ((1.0 - (2.0 / n) ** (1.0 - theta))
                     / (1.0 - self._zeta2 / self._zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact up to a cutoff, then the Euler–Maclaurin tail — YCSB
        # computes the exact sum, which is too slow for n = 2^25 keys.
        cutoff = min(n, 10_000)
        total = sum(1.0 / i ** theta for i in range(1, cutoff + 1))
        if n > cutoff:
            # integral approximation of the remaining tail
            total += ((n ** (1.0 - theta) - cutoff ** (1.0 - theta))
                      / (1.0 - theta))
        return total

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0)
                   ** self._alpha)

    def popularity(self, rank: int) -> float:
        """Probability of the item with the given rank."""
        return (1.0 / (rank + 1) ** self.theta) / self._zetan


class ScrambledZipfianGenerator:
    """Zipfian ranks scattered over the key space by hashing (YCSB's
    request generator)."""

    _PRIME = (1 << 61) - 1

    def __init__(self, n: int, theta: float = 0.99,
                 seed: Optional[int] = None):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, seed)

    def next(self) -> int:
        rank = self._zipf.next()
        return self._fnv(rank) % self.n

    @staticmethod
    def _fnv(value: int) -> int:
        h = 0xcbf29ce484222325
        for _ in range(8):
            h ^= value & 0xff
            h = (h * 0x100000001b3) & ((1 << 64) - 1)
            value >>= 8
        return h


class LatestGenerator:
    """Skewed towards recently inserted items (YCSB workload D)."""

    def __init__(self, n: int, theta: float = 0.99,
                 seed: Optional[int] = None):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, seed)

    def next(self) -> int:
        offset = self._zipf.next()
        return max(0, self.n - 1 - offset)

    def grow(self) -> None:
        """Register a newly inserted item."""
        self.n += 1
        self._zipf = ZipfianGenerator(self.n, self._zipf.theta)
