"""YCSB workload specification and operation streams.

The evaluation's parameters (§9.2, §9.3): 1024-byte records, 8-byte
keys, zipfian request distribution by default, 8 000 000 operations
against memcached, 100 000 (one color) or 20 000 (two colors)
pre-loaded keys against the data structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional

from repro.workloads.distributions import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)


class Operation(NamedTuple):
    kind: str   # "read" | "update" | "insert" | "rmw"
    key: int


@dataclass
class WorkloadSpec:
    """A YCSB workload mix."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    rmw: float = 0.0      # read-modify-write (workload F)
    distribution: str = "zipfian"   # zipfian | uniform | latest
    record_bytes: int = 1024
    key_bytes: int = 8

    def mix(self) -> List:
        return [(self.read, "read"), (self.update, "update"),
                (self.insert, "insert"), (self.rmw, "rmw")]


WORKLOAD_A = WorkloadSpec("A", read=0.5, update=0.5)
WORKLOAD_B = WorkloadSpec("B", read=0.95, update=0.05)
WORKLOAD_C = WorkloadSpec("C", read=1.0)
WORKLOAD_D = WorkloadSpec("D", read=0.95, insert=0.05,
                          distribution="latest")
WORKLOAD_F = WorkloadSpec("F", read=0.5, rmw=0.5)

_SPECS = {w.name: w for w in (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C,
                              WORKLOAD_D, WORKLOAD_F)}


def workload_names() -> List[str]:
    """The canonical workload names, in YCSB order."""
    return list(_SPECS)


def workload_by_name(name: str) -> WorkloadSpec:
    """Look up a workload by name.

    Accepts the canonical single letter in either case (``"A"``,
    ``"c"``) and the spelled-out aliases YCSB tooling uses
    (``"ycsb-a"``, ``"ycsb_a"``, ``"workload-a"``, ``"workloada"``).
    Unknown names raise a :class:`ValueError` that lists the valid
    choices instead of a bare ``KeyError``.
    """
    normalized = name.strip().upper().replace("_", "-")
    for prefix in ("YCSB-", "YCSB", "WORKLOAD-", "WORKLOAD"):
        if normalized.startswith(prefix) and \
                len(normalized) > len(prefix):
            normalized = normalized[len(prefix):]
            break
    spec = _SPECS.get(normalized)
    if spec is None:
        valid = ", ".join(_SPECS)
        raise ValueError(
            f"unknown YCSB workload {name!r}: valid workloads are "
            f"{valid} (aliases like 'ycsb-a' work too)")
    return spec


class Workload:
    """A reproducible stream of YCSB operations."""

    def __init__(self, spec: WorkloadSpec, record_count: int,
                 operation_count: int, seed: int = 42):
        self.spec = spec
        self.record_count = record_count
        self.operation_count = operation_count
        self.seed = seed
        self._chooser = self._make_chooser()
        import random
        self._op_rng = random.Random(seed ^ 0x5bd1e995)
        self._inserted = record_count

    def _make_chooser(self):
        if self.spec.distribution == "uniform":
            return UniformGenerator(self.record_count, self.seed)
        if self.spec.distribution == "latest":
            return LatestGenerator(self.record_count, seed=self.seed)
        return ScrambledZipfianGenerator(self.record_count,
                                         seed=self.seed)

    def operations(self) -> Iterator[Operation]:
        for _ in range(self.operation_count):
            yield self.next_operation()

    def next_operation(self) -> Operation:
        kind = self._pick_kind()
        if kind == "insert":
            key = self._inserted
            self._inserted += 1
            if hasattr(self._chooser, "grow"):
                self._chooser.grow()
        else:
            key = self._chooser.next()
        return Operation(kind, key)

    def _pick_kind(self) -> str:
        r = self._op_rng.random()
        acc = 0.0
        for weight, kind in self.spec.mix():
            acc += weight
            if r < acc:
                return kind
        return "read"

    # -- aggregate properties the cost model uses ---------------------------------

    @property
    def dataset_bytes(self) -> int:
        return self.record_count * (self.spec.record_bytes
                                    + self.spec.key_bytes)

    def operation_mix(self) -> Dict[str, float]:
        return {kind: weight for weight, kind in self.spec.mix()
                if weight > 0.0}


def dataset_sweep(min_bytes: int, max_bytes: int,
                  record_bytes: int = 1024) -> List[int]:
    """Record counts whose datasets span [min_bytes, max_bytes] in
    powers of two — the Figure 8 x-axis (1 MiB to 32 GiB)."""
    counts = []
    size = min_bytes
    while size <= max_bytes:
        counts.append(max(1, size // record_bytes))
        size *= 2
    return counts
