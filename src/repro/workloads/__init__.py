"""repro.workloads — YCSB workload generation (paper [15]).

The evaluation drives memcached and the data structures with YCSB:
zipfian / uniform / latest request distributions, standard workload
mixes (A: 50/50 read-update, B: 95/5, C: read-only, ...), 8-byte keys
and 1024-byte values (§9.2, §9.3).
"""

from repro.workloads.distributions import (
    UniformGenerator,
    ZipfianGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
)
from repro.workloads.ycsb import (
    Operation,
    Workload,
    WorkloadSpec,
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_F,
)

__all__ = [
    "UniformGenerator", "ZipfianGenerator", "LatestGenerator",
    "ScrambledZipfianGenerator",
    "Operation", "Workload", "WorkloadSpec",
    "WORKLOAD_A", "WORKLOAD_B", "WORKLOAD_C", "WORKLOAD_D",
    "WORKLOAD_F",
]
