"""Frontend registry: name → frontend, extension auto-detection, and
cross-language composition.

A registered frontend is a thin descriptor over a driver module that
implements the two-function lowering contract:

``compile_source(source, module_name, verify=True, passes=None)``
    Lower one source text into a fresh :class:`repro.ir.Module` and
    run the frontend pipeline over it.

``lower_source(source, module, filename)``
    Lower one source text *into an existing module* (no pipeline) —
    the primitive :func:`compile_cross` uses to build one IR module
    from units written in different languages, so a MiniPy workload
    script can call MiniC enclave logic directly.

Driver modules are imported lazily so the registry stays import-light
and frontends may depend on the rest of the toolchain freely.
"""

from __future__ import annotations

import difflib
import importlib
import os
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import FrontendError
from repro.ir import Module


class Frontend:
    """A registered source language."""

    def __init__(self, name: str, description: str,
                 extensions: Sequence[str], driver_module: str):
        self.name = name
        self.description = description
        self.extensions = tuple(extensions)
        self.driver_module = driver_module

    def _driver(self):
        return importlib.import_module(self.driver_module)

    def compile_source(self, source: str, module_name: str = "",
                       verify: bool = True, passes=None) -> Module:
        return self._driver().compile_source(
            source, module_name or self.name, verify=verify,
            passes=passes)

    def lower_source(self, source: str, module: Module,
                     filename: str = "<source>") -> None:
        self._driver().lower_source(source, module, filename)

    def __repr__(self) -> str:
        return f"<Frontend {self.name} ({', '.join(self.extensions)})>"


FRONTENDS: Dict[str, Frontend] = {}

#: The fallback when a file extension matches no registered frontend
#: (historic behavior: everything used to be MiniC).
DEFAULT_FRONTEND = "minic"


def register_frontend(frontend: Frontend) -> Frontend:
    if frontend.name in FRONTENDS:
        raise FrontendError(
            f"frontend {frontend.name!r} is already registered")
    for extension in frontend.extensions:
        owner = _extension_owner(extension)
        if owner is not None:
            raise FrontendError(
                f"extension {extension!r} is already claimed by "
                f"frontend {owner.name!r}")
    FRONTENDS[frontend.name] = frontend
    return frontend


def _extension_owner(extension: str) -> Optional[Frontend]:
    for frontend in FRONTENDS.values():
        if extension in frontend.extensions:
            return frontend
    return None


def frontend_names() -> Tuple[str, ...]:
    return tuple(sorted(FRONTENDS))


def frontend_by_name(name: str) -> Frontend:
    """Look up a frontend by name.

    Unknown names raise a :class:`~repro.errors.FrontendError` with a
    did-you-mean hint and the valid choices (mirrors
    :func:`repro.core.placement.policy_by_name`).
    """
    normalized = name.strip().lower()
    frontend = FRONTENDS.get(normalized)
    if frontend is not None:
        return frontend
    close = difflib.get_close_matches(normalized, frontend_names(),
                                      n=1, cutoff=0.4)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    raise FrontendError(
        f"unknown frontend {name!r}{hint} "
        f"(choose from: {', '.join(frontend_names())})")


def detect_frontend(path: str) -> Frontend:
    """The frontend for ``path``, by file extension; unknown
    extensions fall back to :data:`DEFAULT_FRONTEND`."""
    extension = os.path.splitext(path)[1].lower()
    owner = _extension_owner(extension)
    if owner is not None:
        return owner
    return FRONTENDS[DEFAULT_FRONTEND]


def resolve_frontend(name: Optional[str], path: str) -> Frontend:
    """The CLI resolution rule: an explicit ``--frontend`` name wins,
    otherwise the file extension decides."""
    if name is not None:
        return frontend_by_name(name)
    return detect_frontend(path)


def compile_cross(units: Sequence[Tuple[str, str, str]],
                  module_name: str = "cross", verify: bool = True,
                  passes=None) -> Module:
    """Lower several source units — each ``(frontend_name, source,
    filename)`` — into ONE IR module and run the frontend pipeline.

    Units are lowered in order into the same module, so later units
    see (and may call, with normal argument coercion) every function
    and global the earlier units defined: the cross-language story of
    ROADMAP item 4, e.g. MiniC enclave logic driven by a MiniPy
    workload script.  Name clashes raise the usual duplicate-symbol
    :class:`~repro.errors.IRError`.
    """
    from repro.secval.lowering import run_frontend_pipeline

    if not units:
        raise FrontendError("compile_cross needs at least one unit")
    module = Module(module_name)
    for frontend_name, source, filename in units:
        frontend = frontend_by_name(frontend_name)
        frontend.lower_source(source, module, filename)
    return run_frontend_pipeline(module, verify=verify, passes=passes)


# -- built-in frontends ---------------------------------------------------------

register_frontend(Frontend(
    "minic",
    "MiniC — the paper's C dialect with color(...) qualifiers",
    (".c", ".mc", ".minic"),
    "repro.frontend.driver"))

register_frontend(Frontend(
    "minipy",
    "MiniPy — a Python-like secure scripting language with "
    "secure(...)/public(...) declarations",
    (".mpy", ".minipy"),
    "repro.frontend.minipy.driver"))
