"""The shared lowering API — the contract every frontend lowers to.

A frontend (MiniC, MiniPy, ...) owns its own lexer, parser and AST,
but the *output* is always the same: a :class:`repro.ir.Module` whose

* secure types are colors from :mod:`repro.secval.model`, carried on
  IR types via ``with_color`` (never invented by the frontend — named
  colors must pass :func:`~repro.secval.model.validate_color_name`);
* function annotations come from the :data:`ANNOTATIONS` vocabulary
  (``entry`` / ``within`` / ``ignore`` / ``extern``, paper §6.2–§6.4)
  stamped onto ``Function.attributes``;
* instructions carry ``loc = (line, column)`` source positions so the
  typed-error surface (:class:`repro.errors.SecureTypeError` with its
  ``(source line L:C)`` suffix) points back at the frontend's source;
* calls into the interpreter's mini-libc use the shared
  :data:`BUILTIN_SIGNATURES` (so every frontend agrees on the ABI of
  ``malloc``/``printf``/``hash64``/... and on which of them ship
  inside every enclave).

Everything downstream — the pass pipeline, the secure type analysis,
the partitioner, the placement optimizer, all three engines, the
chaos harness and the serve stack — consumes only this contract and
never sees the source language again.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import FrontendError
from repro.ir import Function, FunctionType, Module, PointerType
from repro.ir.types import I8, I32, I64, VOID

#: The frontend-neutral function-annotation vocabulary (paper
#: §6.2–§6.4).  MiniC spells these as declaration keywords
#: (``entry int main()``), MiniPy as decorators (``@entry``); both
#: lower to the same strings on ``Function.attributes``.
ANNOTATIONS = frozenset({"entry", "within", "ignore", "extern"})


def validate_annotation(name: str, line: int = 0,
                        column: int = 0) -> str:
    """Reject annotations outside the shared vocabulary with a
    did-you-mean hint (the typed-error surface of the contract)."""
    if name in ANNOTATIONS:
        return name
    import difflib
    close = difflib.get_close_matches(name, sorted(ANNOTATIONS), n=1,
                                      cutoff=0.4)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    raise FrontendError(
        f"unknown function annotation {name!r}{hint} "
        f"(choose from: {', '.join(sorted(ANNOTATIONS))})",
        line, column)


#: Functions auto-declared on first use — the mini-libc of the
#: interpreter (see repro.ir.interp.DEFAULT_EXTERNALS).  Shared by
#: every frontend so cross-language programs agree on the ABI.
BUILTIN_SIGNATURES: Dict[str, FunctionType] = {
    "malloc": FunctionType(PointerType(I8), [I64]),
    "__privagic_alloc": FunctionType(PointerType(I8),
                                     [PointerType(I8), I64]),
    "free": FunctionType(VOID, [PointerType(I8)]),
    "memcpy": FunctionType(PointerType(I8),
                           [PointerType(I8), PointerType(I8), I64]),
    "memset": FunctionType(PointerType(I8), [PointerType(I8), I32, I64]),
    "strncpy": FunctionType(PointerType(I8),
                            [PointerType(I8), PointerType(I8), I64]),
    "strlen": FunctionType(I64, [PointerType(I8)]),
    "strcmp": FunctionType(I32, [PointerType(I8), PointerType(I8)]),
    "printf": FunctionType(I32, [PointerType(I8)], vararg=True),
    "puts": FunctionType(I32, [PointerType(I8)]),
    "putchar": FunctionType(I32, [I32]),
    "abort": FunctionType(VOID, []),
    "thread_create": FunctionType(I64, [PointerType(I8), I64]),
    "thread_join": FunctionType(VOID, [I64]),
    "mutex_lock": FunctionType(I32, [I64]),
    "mutex_unlock": FunctionType(I32, [I64]),
    "hash64": FunctionType(I64, [I64]),
}

#: The subset of builtins shipped inside every enclave (paper §6.3),
#: i.e. auto-annotated ``within``.
WITHIN_BUILTINS = frozenset({
    "malloc", "__privagic_alloc", "free", "memcpy", "memset",
    "strncpy", "strlen", "strcmp", "hash64",
})


def auto_declare_builtin(module: Module, name: str) -> Optional[Function]:
    """Declare mini-libc function ``name`` in ``module`` on first use,
    or return None when ``name`` is not a builtin."""
    sig = BUILTIN_SIGNATURES.get(name)
    if sig is None:
        return None
    fn = Function(name, sig, attributes=["extern"])
    if name in WITHIN_BUILTINS:
        fn.attributes.add("within")
    module.add_function(fn)
    return fn


def run_frontend_pipeline(module: Module, verify: bool = True,
                          passes=None) -> Module:
    """Run the frontend pass pipeline over a freshly lowered module.

    This is the tail of every frontend's ``compile_source``:
    structural verification by default, ``passes`` overrides the
    pipeline, ``verify=False`` skips it.  Centralized here so all
    frontends produce modules that met the same admission check.
    """
    from repro.pipeline import FRONTEND_PIPELINE, PassManager
    pipeline = passes if passes is not None else (
        FRONTEND_PIPELINE if verify else ())
    if pipeline:
        PassManager(pipeline).run(module)
    return module


# -- contract facts ------------------------------------------------------------


def declassifiers(module: Module) -> list:
    """The module's declassification boundary: every ``ignore``
    function (paper §6.4), by name."""
    return sorted(f.name for f in module.functions.values()
                  if f.is_ignore)


def secure_globals(module: Module) -> Dict[str, str]:
    """Map of colored global names to their declared color — the
    module's explicit secret surface, regardless of frontend."""
    colored = {}
    for name, gv in module.globals.items():
        color = gv.value_type.color
        if color is not None:
            colored[name] = color
    return colored


def effect_facts(module: Module) -> Dict[str, dict]:
    """Per-function secure-effect summary: annotations plus the named
    colors the function's code statically reads and writes (through
    colored globals and colored struct fields).

    These are *frontend-neutral* facts — consumers (tests, reports,
    future inter-module checks) can compare a MiniC and a MiniPy
    lowering of the same program without touching either AST.
    """
    from repro.ir.instructions import Load, Store
    from repro.ir.types import PointerType as Ptr
    from repro.secval.model import is_named

    facts: Dict[str, dict] = {}
    for fn in module.defined_functions():
        reads, writes = set(), set()
        for instr in fn.instructions():
            if isinstance(instr, (Load, Store)):
                ptr_type = instr.ptr.type
                color = ptr_type.pointee.color \
                    if isinstance(ptr_type, Ptr) else None
                if color is not None and is_named(color):
                    (reads if isinstance(instr, Load)
                     else writes).add(color)
        facts[fn.name] = {
            "annotations": sorted(fn.attributes & ANNOTATIONS),
            "declassifier": fn.is_ignore,
            "colors_read": sorted(reads),
            "colors_written": sorted(writes),
        }
    return facts
