"""repro.secval — the frontend-neutral secure-value layer.

This package is the single contract between source languages and the
Privagic toolchain (ROADMAP item 4; the SecV design in PAPERS.md).
It has four parts:

* :mod:`repro.secval.model` — the color lattice (F/U/S, hardened vs
  relaxed, compatibility and join) every secure type reduces to;
* :mod:`repro.secval.lowering` — the shared lowering API: annotation
  vocabulary, mini-libc builtin ABI, the frontend pass pipeline, and
  the declassification/effect fact extractors;
* :mod:`repro.secval.registry` — named frontends (``minic``,
  ``minipy``), extension auto-detection, and cross-language
  composition via :func:`~repro.secval.registry.compile_cross`;
* :mod:`repro.secval.audit` — post-partition audits (the colored
  access census and the enclave-confinement check) stated once,
  frontend-free.

The typed-error surface of the contract is shared too: frontends
raise :class:`repro.errors.FrontendError` with ``line:column``
positions, and type violations surface as
:class:`repro.errors.SecureTypeError` carrying the rule name, the
offending instruction and its ``(source line L:C)`` — regardless of
which language the line was written in.
"""

from repro.errors import FrontendError, SecureTypeError
from repro.secval.model import (
    F,
    HARDENED,
    RELAXED,
    S,
    U,
    compatible,
    is_free,
    is_named,
    is_untrusted,
    join,
    named_colors,
    untrusted_color,
    validate_color_name,
)
from repro.secval.lowering import (
    ANNOTATIONS,
    BUILTIN_SIGNATURES,
    WITHIN_BUILTINS,
    auto_declare_builtin,
    declassifiers,
    effect_facts,
    run_frontend_pipeline,
    secure_globals,
    validate_annotation,
)
from repro.secval.registry import (
    DEFAULT_FRONTEND,
    FRONTENDS,
    Frontend,
    compile_cross,
    detect_frontend,
    frontend_by_name,
    frontend_names,
    register_frontend,
    resolve_frontend,
)
from repro.secval.audit import colored_accesses, confinement_violations

__all__ = [
    # model
    "F", "U", "S", "HARDENED", "RELAXED",
    "is_free", "is_named", "is_untrusted", "untrusted_color",
    "compatible", "join", "validate_color_name", "named_colors",
    # lowering contract
    "ANNOTATIONS", "BUILTIN_SIGNATURES", "WITHIN_BUILTINS",
    "auto_declare_builtin", "validate_annotation",
    "run_frontend_pipeline", "declassifiers", "secure_globals",
    "effect_facts",
    # registry
    "Frontend", "FRONTENDS", "DEFAULT_FRONTEND",
    "register_frontend", "frontend_names", "frontend_by_name",
    "detect_frontend", "resolve_frontend", "compile_cross",
    # audit
    "colored_accesses", "confinement_violations",
    # typed-error surface
    "FrontendError", "SecureTypeError",
]
