"""Post-partition secure-value audits, frontend-neutral.

The paper's central property — secret-typed code is confined to its
enclave — is a fact about the *partitioned program*, not about any
source language.  These helpers let tests state it once and apply it
to programs lowered from MiniC, MiniPy, or a cross-language mix (the
colored-access census the placement tests pioneered, promoted to the
contract surface).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.instructions import Load, Store
from repro.ir.values import GlobalVariable
from repro.secval.model import is_named


def colored_accesses(program) -> List[Tuple[str, str, str]]:
    """Census of every load/store of a named-colored global across the
    partition: ``(module_color, "Load"|"Store", global_name)`` rows,
    sorted.  Byte-stable across runs, so two partitions of equivalent
    programs can be compared directly."""
    from repro.core.analysis import location_color

    accesses = []
    for color, module in sorted(program.modules.items()):
        for fn in module.defined_functions():
            for instr in fn.instructions():
                if not isinstance(instr, (Load, Store)):
                    continue
                pointer = instr.ptr
                if not isinstance(pointer, GlobalVariable):
                    continue
                home = location_color(pointer.value_type, program.mode)
                if is_named(home):
                    accesses.append((color, type(instr).__name__,
                                     pointer.name))
    return sorted(accesses)


def confinement_violations(program) -> List[Tuple[str, str, str]]:
    """Colored-global accesses that escaped their enclave: every
    census row whose hosting module color differs from the global's
    declared color.  An empty list is the paper's confinement
    guarantee; any row is a partitioner bug."""
    from repro.core.analysis import location_color

    violations = []
    for color, kind, name in colored_accesses(program):
        home = None
        for module in program.modules.values():
            gv = module.globals.get(name)
            if gv is not None:
                home = location_color(gv.value_type, program.mode)
                break
        if home != color:
            violations.append((color, kind, name))
    return violations
