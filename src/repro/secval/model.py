"""The frontend-neutral secure-value model: the color lattice.

This is the Privagic color system of paper Table 2 and §5.3, lifted
out of the MiniC-specific compiler so every frontend lowers to the
same model (the SecV insight in PAPERS.md: partitioning works over
language-neutral *secure values*, not source-language types).

A *color* is a plain string.  Three colors are special:

``F`` (free)
    Initial color of registers and instructions; "the color will be
    deduced by type inference".  F is the only color compatible with
    every other color; F computations are replicated in each enclave.

``U`` (untrusted)
    Color of uncolored memory locations in **hardened** mode.  U
    behaves like any other enclave color: a value loaded from U stays
    U, so an enclave-colored instruction can never consume it — this
    is the Iago protection.

``S`` (shared)
    Color of uncolored memory locations in **relaxed** mode.  S is
    incompatible with every color, but a value loaded from S *becomes
    F*, so enclave code may consume values from shared memory (no Iago
    protection).

Every other string is a named enclave color (``"blue"``, ``"red"``,
...) chosen by the developer in source-level annotations — MiniC's
``color(...)`` qualifier or MiniPy's ``secure(...)`` declarations;
by the time the analyses run, the surface syntax is gone and only
these colors remain, carried on IR types.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import SecureTypeError

F = "F"
U = "U"
S = "S"

#: The two analysis modes (paper §5).
HARDENED = "hardened"
RELAXED = "relaxed"

_RESERVED = frozenset({F, U, S})


def is_free(color: str) -> bool:
    return color == F


def is_named(color: str) -> bool:
    """True for a developer-chosen enclave color."""
    return color not in _RESERVED


def untrusted_color(mode: str) -> str:
    """The color given to uncolored memory locations: U in hardened
    mode, S in relaxed mode (Table 2)."""
    return U if mode == HARDENED else S


def is_untrusted(color: str) -> bool:
    return color in (U, S)


def compatible(a: str, b: str) -> bool:
    """The compatibility relation of Table 3:
    ``a ~ b  ⇔  a == b or a == F or b == F``."""
    return a == b or a == F or b == F


def join(a: str, b: str, rule: str = "op", context: str = "") -> str:
    """The color a register takes when constrained by both ``a`` and
    ``b`` (the ``x ← ȳ`` operation of Table 3): the non-F one of the
    pair, or an error when two distinct non-F colors meet."""
    if a == b or b == F:
        return a
    if a == F:
        return b
    raise SecureTypeError(rule, f"incompatible colors {a} and {b}"
                          + (f" in {context}" if context else ""),
                          colors=(a, b))


def validate_color_name(name: str) -> str:
    """Reject developer annotations that collide with reserved colors."""
    if name in (F, S):
        raise SecureTypeError(
            "color-name", f"{name!r} is a reserved color and cannot be "
                          f"used as an enclave name")
    return name


def named_colors(colors: Iterable[str]) -> set:
    return {c for c in colors if is_named(c)}
