"""Exporters and format checks for :mod:`repro.obs` artifacts.

Two wire formats leave the system:

* **Chrome ``trace_event`` JSON** (from :class:`~repro.obs.tracer.
  Tracer`): loadable in ``chrome://tracing`` / Perfetto.
  :func:`validate_chrome_trace` is the schema check used by the test
  suite and by ``scripts/check.sh``'s CLI smoke — it validates the
  subset of the trace-event spec this tracer emits, strictly.

* **Flat metrics dumps** (from :class:`~repro.obs.metrics.
  MetricsRegistry`): JSON (:func:`metrics_to_json`) for machines,
  ``name = value`` text for the ``--stats`` CLI flag.
"""

from __future__ import annotations

import json
from typing import List

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import CATEGORIES, Tracer

#: Event phases the tracer emits: complete, instant, counter, metadata.
KNOWN_PHASES = ("X", "i", "C", "M")


class TraceFormatError(ValueError):
    """A trace object violating the expected Chrome trace schema."""


def validate_chrome_trace(trace: object) -> int:
    """Validate a parsed Chrome trace object; returns the number of
    events.  Raises :class:`TraceFormatError` on the first violation.

    Checks the envelope (a dict with a ``traceEvents`` list) and every
    event: required fields, known phases and categories, numeric
    non-negative timestamps, and ``dur`` on complete events.
    """
    if not isinstance(trace, dict):
        raise TraceFormatError(f"trace root is {type(trace).__name__},"
                               f" expected object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise TraceFormatError("trace has no traceEvents list")
    for i, event in enumerate(events):
        _validate_event(i, event)
    return len(events)


def _validate_event(i: int, event: object) -> None:
    if not isinstance(event, dict):
        raise TraceFormatError(f"event {i} is not an object")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        raise TraceFormatError(f"event {i} has no name")
    ph = event.get("ph")
    if ph not in KNOWN_PHASES:
        raise TraceFormatError(f"event {i} ({name}): unknown phase "
                               f"{ph!r}")
    if not isinstance(event.get("pid"), int):
        raise TraceFormatError(f"event {i} ({name}): missing pid")
    if not isinstance(event.get("tid"), int):
        raise TraceFormatError(f"event {i} ({name}): missing tid")
    if ph == "M":
        return  # metadata events carry no timestamp
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        raise TraceFormatError(f"event {i} ({name}): bad ts {ts!r}")
    cat = event.get("cat")
    if cat not in CATEGORIES:
        raise TraceFormatError(f"event {i} ({name}): unknown category "
                               f"{cat!r}")
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            raise TraceFormatError(f"event {i} ({name}): complete "
                                   f"event with bad dur {dur!r}")
    if "args" in event and not isinstance(event["args"], dict):
        raise TraceFormatError(f"event {i} ({name}): args not an "
                               f"object")


def validate_chrome_trace_file(path: str) -> int:
    """Load ``path`` as JSON and validate it; returns the event
    count."""
    with open(path) as handle:
        return validate_chrome_trace(json.load(handle))


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Export a tracer to a Chrome trace file (delegates to the
    tracer; kept here so callers only import one module)."""
    return tracer.write_chrome(path)


def metrics_to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    return json.dumps(registry.as_dict(), indent=indent,
                      sort_keys=True)


def write_metrics_json(registry: MetricsRegistry, path: str) -> str:
    with open(path, "w") as handle:
        handle.write(metrics_to_json(registry))
        handle.write("\n")
    return path


def metrics_to_text(registry: MetricsRegistry) -> str:
    return registry.to_text()


def trace_event_names(trace: dict) -> List[str]:
    """Distinct event names of a parsed trace (schema-test helper)."""
    return sorted({e.get("name", "") for e in
                   trace.get("traceEvents", [])})
