"""Named counters, gauges and histograms — the metrics half of
:mod:`repro.obs`.

The evaluation (§9, Figs 8-10) is built on counted quantities: message
counts, boundary crossings, interpreter steps, cycles by cost class.
Before this module each subsystem kept its own ad-hoc dict
(``RuntimeStats`` attributes, ``Channel.kind_sent``,
``CostMeter.breakdown`` / ``counts``, engine step counters); the
:class:`MetricsRegistry` gives them one namespace to publish into, one
export format, and one place for a differential test to cross-check
that the layers agree (``tests/obs/test_differential_stats.py``).

Publishing is *pull-based*: the hot paths keep their plain-int
counters (attribute increments are the cheapest thing Python can do),
and :meth:`repro.obs.observe.Observability.publish` snapshots them
into the registry when somebody asks.  Only genuinely new series
(queue-depth histograms, per-chunk profiles) are pushed live.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def set(self, value: Number) -> None:
        """Snapshot-publish: overwrite with an externally kept total."""
        self.value = value

    def get(self) -> Number:
        return self.value

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that goes up and down (queue depth, resident slots)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def dec(self, n: Number = 1) -> None:
        self.value -= n

    def get(self) -> Number:
        return self.value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Streaming summary of observed samples (count/sum/min/max/mean).

    No buckets: the consumers here (queue depths, burst lengths) need
    ranking and sanity checks, not quantile estimation, and a fixed
    five-field summary keeps ``observe`` O(1) with no allocation.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def get(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "mean": round(self.mean, 4),
        }

    def __repr__(self) -> str:
        return (f"<Histogram {self.name} n={self.count} "
                f"mean={self.mean:.2f}>")


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A flat namespace of named metrics.

    Names are dotted paths; a label rides in square brackets
    (``"runtime.spawns"``, ``"chunk.spawns[g$F@blue]"``).  Metrics are
    created on first use and type-checked on reuse, so two subsystems
    publishing the same name cannot silently disagree on semantics.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    # -- creation / lookup -------------------------------------------------------

    def _get(self, name: str, cls) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{metric.kind}, not {cls.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- convenience -------------------------------------------------------------

    def inc(self, name: str, n: Number = 1) -> None:
        self.counter(name).inc(n)

    def set(self, name: str, value: Number) -> None:
        self.counter(name).set(value)

    def observe(self, name: str, value: Number) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str, default: Number = 0) -> object:
        """Read a metric's current value without creating it — the
        lookup tests and smoke scripts use (a missing counter reads
        as ``default``, not as a freshly minted zero entry)."""
        metric = self._metrics.get(name)
        return metric.get() if metric is not None else default

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Metric:
        return self._metrics[name]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def items(self) -> Iterable[Tuple[str, Metric]]:
        return sorted(self._metrics.items())

    # -- export ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-ready snapshot: name -> value (histograms expand
        to their summary dict)."""
        return {name: metric.get() for name, metric in self.items()}

    def to_text(self) -> str:
        """Human-readable dump, one ``name = value`` line per metric,
        sorted by name (the ``--stats`` CLI output)."""
        lines = []
        for name, metric in self.items():
            value = metric.get()
            if isinstance(value, dict):
                inner = " ".join(f"{k}={v}" for k, v in value.items())
                lines.append(f"{name} = {{{inner}}}")
            elif isinstance(value, float):
                lines.append(f"{name} = {value:.2f}")
            else:
                lines.append(f"{name} = {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._metrics)} metrics>"
