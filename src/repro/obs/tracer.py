"""Structured tracing — typed events recorded in Chrome
``trace_event`` form.

The tracer answers the question the counters cannot: *when* did the
protocol of Figure 7 do what.  Each event is one plain dict already in
the Chrome/Perfetto ``trace_event`` shape (load the exported file in
``chrome://tracing`` or https://ui.perfetto.dev), so exporting is just
``json.dump`` and recording is one ``list.append`` — no classes, no
serialization pass, no per-event allocation beyond the dict itself.

Typed emitters (instead of a free-form ``emit(dict)``) keep the event
vocabulary closed and schema-checkable:

======================  =========================================
``step_burst``          one scheduler burst of an execution
                        context (complete event, dur = wall time,
                        args carry the interpreted step count)
``spawn``               a ``spawn`` message enqueued (§7.3.2)
``trampoline``          a blocked/idle worker starting a spawned
                        chunk (Fig 7 nested execution)
``reply``               a chunk's return value sent back (Fig 7 c5)
``channel_push/_pop``   a message crossing a channel, with the
                        queue depth after the operation (the
                        counter track is the queue-depth timeline)
``memory_access``       enclave/unsafe memory traffic, aggregated
                        and flushed as counter samples
``cost_charge``         simulated cycles by cost class, aggregated
                        and flushed as counter samples
``fault``               a fault-injection/detection/recovery event
                        from the chaos harness (repro.faults) or
                        the runtime's integrity checks
``serve_mark`` /        the socket server's request lifecycle
``serve_span``          (repro.serve): accept/shed instants on the
                        connection's track, and queued/execute/
                        reply spans per request or batch drive
======================  =========================================

Per-access events would dwarf the run being observed, so the two
high-frequency sources (memory accesses, cost charges) accumulate
into dicts and emit one counter sample every ``sample_every``
events; :meth:`flush` drains the remainder (detach calls it).

A tracer is attached by the owners of the hot paths (runtime,
channels, machine) checking ``if tracer is not None`` — exactly the
guard discipline of ``Machine.access_hooks`` — so a detached run pays
zero observer overhead.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

#: Event categories (the ``cat`` field): used by the schema check and
#: by trace viewers for filtering.
CAT_INTERP = "interp"
CAT_RUNTIME = "runtime"
CAT_CHANNEL = "channel"
CAT_MEMORY = "mem"
CAT_COST = "cost"
CAT_PIPELINE = "pipeline"
CAT_FAULT = "fault"
CAT_SERVE = "serve"
CAT_TRACE = "trace"

CATEGORIES = (CAT_INTERP, CAT_RUNTIME, CAT_CHANNEL, CAT_MEMORY,
              CAT_COST, CAT_PIPELINE, CAT_FAULT, CAT_SERVE, CAT_TRACE)

#: The single simulated process all tracks live in.
PID = 1


class Tracer:
    """Records typed events; exports a Chrome ``trace_event`` dict.

    Parameters
    ----------
    sample_every:
        Flush interval for the aggregated high-frequency sources
        (memory accesses and cost charges): one counter sample per
        ``sample_every`` underlying events.
    clock:
        Seconds-returning callable (injectable for deterministic
        tests); defaults to :func:`time.perf_counter`.
    """

    def __init__(self, sample_every: int = 256, clock=None):
        self._clock = clock or time.perf_counter
        self._t0 = self._clock()
        self.events: List[dict] = []
        self.sample_every = max(1, int(sample_every))
        self._tids: Dict[str, int] = {}
        # Aggregation state for the high-frequency sources.
        self._mem_counts: Dict[str, int] = {}
        self._mem_pending = 0
        self._cost_cycles: Dict[str, float] = {}
        self._cost_pending = 0

    # -- clock / track helpers ---------------------------------------------------

    def now_us(self) -> float:
        """Microseconds since the tracer was created."""
        return (self._clock() - self._t0) * 1e6

    def _tid(self, track: str) -> int:
        """Stable thread id for a named track, emitting the Chrome
        ``thread_name`` metadata event on first use."""
        tid = self._tids.get(track)
        if tid is None:
            tid = self._tids[track] = len(self._tids) + 1
            self.events.append({
                "name": "thread_name", "ph": "M", "pid": PID,
                "tid": tid, "args": {"name": track},
            })
        return tid

    # -- generic emitters --------------------------------------------------------

    def instant(self, name: str, cat: str, track: str,
                args: Optional[dict] = None) -> None:
        self.events.append({
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": self.now_us(), "pid": PID, "tid": self._tid(track),
            "args": args or {},
        })

    def complete(self, name: str, cat: str, track: str, ts_us: float,
                 dur_us: float, args: Optional[dict] = None) -> None:
        self.events.append({
            "name": name, "cat": cat, "ph": "X", "ts": ts_us,
            "dur": max(dur_us, 0.0), "pid": PID,
            "tid": self._tid(track), "args": args or {},
        })

    def counter(self, name: str, cat: str, values: dict) -> None:
        self.events.append({
            "name": name, "cat": cat, "ph": "C", "ts": self.now_us(),
            "pid": PID, "tid": 0, "args": dict(values),
        })

    # -- typed events ------------------------------------------------------------

    def pass_span(self, name: str, ts_us: float, dur_us: float,
                  args: Optional[dict] = None) -> None:
        """One compilation-pipeline pass, as a complete span on the
        ``pipeline`` track."""
        self.complete(name, CAT_PIPELINE, "pipeline", ts_us, dur_us,
                      args)

    def step_burst(self, ctx_name: str, mode: Optional[str],
                   steps: int, t0_us: float) -> None:
        """One scheduler burst: ``steps`` interpreted steps on the
        context's track, spanning ``t0_us`` to now."""
        self.complete("burst", CAT_INTERP, ctx_name, t0_us,
                      self.now_us() - t0_us,
                      {"steps": steps, "mode": mode or "U"})

    def spawn(self, chunk: str, src: str, dst: str,
              n_args: int) -> None:
        self.instant("spawn", CAT_RUNTIME, f"color.{src}",
                     {"chunk": chunk, "src": src, "dst": dst,
                      "f_args": n_args})

    def trampoline(self, chunk: str, color: str) -> None:
        self.instant("trampoline", CAT_RUNTIME, f"color.{color}",
                     {"chunk": chunk, "color": color})

    def reply(self, chunk: str, src: str, dst: str) -> None:
        self.instant("reply", CAT_RUNTIME, f"color.{src}",
                     {"chunk": chunk, "src": src, "dst": dst})

    def channel_push(self, src: str, dst: str, kind: str,
                     depth: int) -> None:
        self.instant("push", CAT_CHANNEL, f"chan.{src}->{dst}",
                     {"kind": kind, "depth": depth})
        self.counter(f"depth {src}->{dst}", CAT_CHANNEL,
                     {"pending": depth})

    def channel_pop(self, src: str, dst: str, kind: str,
                    depth: int) -> None:
        self.instant("pop", CAT_CHANNEL, f"chan.{src}->{dst}",
                     {"kind": kind, "depth": depth})
        self.counter(f"depth {src}->{dst}", CAT_CHANNEL,
                     {"pending": depth})

    def fault(self, event: str, kind: str,
              args: Optional[dict] = None) -> None:
        """One fault-injection or fault-detection event on the
        ``faults`` track.  ``event`` is ``inject`` (the chaos harness
        perturbed something), ``detect`` (an integrity check caught
        an anomaly, typed fault imminent) or ``recover`` (a crashed
        worker restarted and replayed its spawn)."""
        payload = {"kind": kind}
        if args:
            payload.update(args)
        self.instant(event, CAT_FAULT, "faults", payload)

    def trace_compile(self, fn_name: str, head: str, blocks: int,
                      steps_per_iter: int, t0_us: float) -> None:
        """One trace-tier region compilation, as a complete span on
        the ``trace`` track."""
        self.complete("trace-compile", CAT_TRACE, "trace", t0_us,
                      self.now_us() - t0_us,
                      {"fn": fn_name, "head": head, "blocks": blocks,
                       "steps_per_iter": steps_per_iter})

    def trace_deopt(self, ctx_name: str, fn_name: str,
                    head: str) -> None:
        """A compiled trace declined to run (guard failure or no
        budget headroom) and the decoded tier took over."""
        self.instant("trace-deopt", CAT_TRACE, "trace",
                     {"ctx": ctx_name, "fn": fn_name, "head": head})

    def serve_mark(self, event: str, track: str,
                   args: Optional[dict] = None) -> None:
        """One socket-server lifecycle instant (``accept``, ``shed``,
        ``close`` ...) on a serve-layer track (``conn.N`` or
        ``serve``)."""
        self.instant(event, CAT_SERVE, track, args)

    def serve_span(self, name: str, track: str, ts_us: float,
                   dur_us: float,
                   args: Optional[dict] = None) -> None:
        """One serve-layer phase as a complete span: per-request
        ``queued``/``reply`` on the connection's track, per-round
        ``execute`` on the ``serve`` track."""
        self.complete(name, CAT_SERVE, track, ts_us, dur_us, args)

    def memory_access(self, region: str, rw: str) -> None:
        """Aggregated: one counter sample per ``sample_every``
        accesses, carrying cumulative per-region read/write counts."""
        key = f"{region}.{rw}"
        self._mem_counts[key] = self._mem_counts.get(key, 0) + 1
        self._mem_pending += 1
        if self._mem_pending >= self.sample_every:
            self._flush_memory()

    def cost_charge(self, kind: str, cycles: float,
                    count: float) -> None:
        """Aggregated like :meth:`memory_access`: cumulative cycles by
        cost class, sampled every ``sample_every`` charges."""
        self._cost_cycles[kind] = \
            self._cost_cycles.get(kind, 0.0) + cycles
        self._cost_pending += 1
        if self._cost_pending >= self.sample_every:
            self._flush_cost()

    # -- aggregation flushing ----------------------------------------------------

    def _flush_memory(self) -> None:
        if self._mem_pending:
            self._mem_pending = 0
            self.counter("mem.accesses", CAT_MEMORY,
                         dict(self._mem_counts))

    def _flush_cost(self) -> None:
        if self._cost_pending:
            self._cost_pending = 0
            self.counter("cost.cycles", CAT_COST,
                         {k: round(v, 1)
                          for k, v in self._cost_cycles.items()})

    def flush(self) -> None:
        """Drain pending aggregated samples (called on detach)."""
        self._flush_memory()
        self._flush_cost()

    # -- export ------------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The trace as a Chrome ``trace_event`` JSON object."""
        self.flush()
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs"},
        }

    def write_chrome(self, path: str) -> str:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)
            handle.write("\n")
        return path

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<Tracer {len(self.events)} events>"
