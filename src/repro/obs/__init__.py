"""repro.obs — unified observability: structured tracing + metrics.

The evaluation of the paper (§9, Figs 8-10) is measurement: message
counts, boundary crossings, LLC/EPC cost breakdowns.  This package
makes those measurements recordable, correlatable and exportable:

* :mod:`repro.obs.tracer` — a low-overhead :class:`Tracer` with typed
  events (interpreter step-bursts, chunk spawn/trampoline/reply,
  channel push/pop with queue depth, enclave memory traffic, cost
  charges), a no-op when detached;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named
  counters/gauges/histograms the existing subsystems publish into;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (loadable in
  ``chrome://tracing`` / Perfetto) with a strict schema validator,
  plus flat JSON/text metrics dumps;
* :mod:`repro.obs.observe` — :class:`Observability`, the attach/
  detach choreography tying a tracer + meter + registry to one
  :class:`~repro.runtime.executor.PrivagicRuntime` run.

Surfaces: ``repro run --trace out.json --stats`` in the CLI, the
``REPRO_TRACE`` hook of the benchmark suite, and direct library use.
"""

from repro.obs.export import (
    TraceFormatError,
    metrics_to_json,
    metrics_to_text,
    trace_event_names,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observe import Observability
from repro.obs.tracer import CATEGORIES, Tracer

__all__ = [
    "CATEGORIES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "TraceFormatError",
    "Tracer",
    "metrics_to_json",
    "metrics_to_text",
    "trace_event_names",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
    "write_metrics_json",
]
