"""`Observability` — one object attaching the tracer and metrics to a
running partitioned program.

The individual hooks are deliberately dumb (a ``tracer`` attribute
checked for ``None`` on each hot path, exactly like
``Machine.access_hooks``); this module owns the choreography:

* :meth:`Observability.attach` wires a :class:`~repro.obs.tracer.
  Tracer` into the runtime (spawn/trampoline/reply events), its
  channel matrices (push/pop + queue-depth timelines), the machine
  (step-burst events from both engines' ``run_burst``), and —
  optionally — a :class:`~repro.sgx.metering.MachineMeter` whose
  :class:`~repro.sgx.costmodel.CostMeter` streams cost-charge events.

* :meth:`Observability.detach` unwires everything, restoring the
  unobserved fast path (empty ``access_hooks``, ``tracer is None``).

* :meth:`Observability.publish` snapshots every counter the system
  keeps — ``RuntimeStats``, per-channel kind counts, engine step
  counters, cost-model breakdowns, per-chunk and per-color profiles —
  into one :class:`~repro.obs.metrics.MetricsRegistry`, which the
  exporters of :mod:`repro.obs.export` turn into JSON or text.

Typical use (this is what ``repro run --trace out.json --stats``
does)::

    obs = Observability(trace=True, meter=True).attach(runtime)
    runtime.run("main")
    obs.detach()
    obs.write_trace("out.json")
    print(obs.metrics_text())
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.export import metrics_to_json, metrics_to_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.sgx.costmodel import CostParams, MACHINE_A
from repro.sgx.metering import MachineMeter


class Observability:
    """Tracing + metrics for one :class:`~repro.runtime.executor.
    PrivagicRuntime` run.

    Parameters
    ----------
    trace:
        Record trace events (otherwise only metrics publishing is
        available and the run stays on the unobserved fast path).
    meter:
        Attach a :class:`MachineMeter`, so actual memory traffic is
        charged against the SGX cost model and appears in the trace
        (``cost`` counter track) and metrics (``cost.*`` names).
        This slows the run — metering observes every access.
    params:
        Cost-model machine preset for the meter.
    registry:
        Publish into an existing registry instead of a fresh one.
    """

    def __init__(self, trace: bool = True, meter: bool = False,
                 params: CostParams = MACHINE_A,
                 registry: Optional[MetricsRegistry] = None):
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._want_meter = meter
        self._params = params
        self.meter: Optional[MachineMeter] = None
        self.runtime = None
        self._mem_hook = None

    # -- wiring ------------------------------------------------------------------

    def attach(self, runtime) -> "Observability":
        """Install the hooks on ``runtime`` (idempotent per runtime)."""
        if self.runtime is not None and self.runtime is not runtime:
            raise ValueError("Observability is already attached to a "
                             "different runtime")
        self.runtime = runtime
        machine = runtime.machine
        if self._want_meter and self.meter is None:
            self.meter = MachineMeter(machine, self._params,
                                      track_colors=True)
            if self.tracer is not None:
                self.meter.meter.set_observer(self.tracer.cost_charge)
        if self.tracer is not None:
            runtime.tracer = self.tracer
            machine.tracer = self.tracer
            for group in runtime._groups.values():
                group.matrix.set_tracer(self.tracer)
            if self._mem_hook is None:
                tracer = self.tracer

                def mem_hook(ctx, addr, region, rw):
                    tracer.memory_access(region, rw)

                self._mem_hook = mem_hook
                machine.access_hooks.append(mem_hook)
        return self

    def detach(self) -> "Observability":
        """Remove every hook; counters and events keep their values."""
        runtime = self.runtime
        if runtime is None:
            return self
        machine = runtime.machine
        if runtime.tracer is self.tracer:
            runtime.tracer = None
        if machine.tracer is self.tracer:
            machine.tracer = None
        for group in runtime._groups.values():
            if group.matrix.tracer is self.tracer:
                group.matrix.set_tracer(None)
        if self._mem_hook is not None:
            if self._mem_hook in machine.access_hooks:
                machine.access_hooks.remove(self._mem_hook)
            self._mem_hook = None
        if self.meter is not None:
            self.meter.detach()
            self.meter.meter.set_observer(None)
        if self.tracer is not None:
            self.tracer.flush()
        return self

    # -- metrics publishing ------------------------------------------------------

    def publish(self) -> MetricsRegistry:
        """Snapshot every layer's counters into the registry and
        return it.  Safe to call repeatedly (counters are overwritten,
        not re-accumulated)."""
        runtime = self.runtime
        if runtime is None:
            return self.registry
        reg = self.registry
        for name, value in runtime.stats.as_dict().items():
            reg.set(f"runtime.{name}", value)
        for kind, count in runtime.message_stats().items():
            reg.set(f"channel.{kind}", count)
        machine = runtime.machine
        reg.set("interp.steps", machine.total_steps)
        reg.set("interp.blocked_steps", machine.blocked_steps)
        reg.set("interp.contexts", len(machine.contexts))
        for key, value in getattr(machine, "trace_stats", {}).items():
            reg.set(f"interp.trace.{key}", value)
        for chunk, profile in runtime.stats.per_chunk.items():
            for key, value in profile.items():
                reg.set(f"chunk.{key}[{chunk}]", value)
        for color, profile in self.color_profiles().items():
            for key, value in profile.items():
                reg.set(f"color.{key}[{color}]", value)
        injector = getattr(runtime, "fault_injector", None)
        if injector is not None:
            reg.set("faults.armed", injector.armed)
            reg.set("faults.injected", injector.injected_total())
            reg.set("faults.detected", injector.detected_total())
            for action, count in injector.injected.items():
                reg.set(f"faults.injected[{action}]", count)
            for kind, count in injector.detected.items():
                reg.set(f"faults.detected[{kind}]", count)
        if self.meter is not None:
            meter = self.meter.meter
            reg.set("cost.cycles", meter.cycles)
            for kind, cycles in meter.breakdown.items():
                reg.set(f"cost.cycles[{kind}]", round(cycles, 2))
            for kind, count in meter.counts.items():
                reg.set(f"cost.count[{kind}]", count)
            for region, count in \
                    self.meter.accesses_by_region.items():
                reg.set(f"mem.accesses[{region}]", count)
        return reg

    # -- profiles ----------------------------------------------------------------

    def color_profiles(self) -> Dict[str, Dict[str, object]]:
        """Per-color profile: interpreted steps, messages sent and
        received over the channels, and (when metering) LLC traffic."""
        runtime = self.runtime
        profiles: Dict[str, Dict[str, object]] = {}

        def profile(color: str) -> Dict[str, object]:
            entry = profiles.get(color)
            if entry is None:
                entry = profiles[color] = {
                    "steps": 0, "sent": 0, "received": 0}
            return entry

        for ctx in runtime.machine.contexts:
            color = ctx.mode if ctx.mode is not None \
                else runtime.untrusted
            profile(color)["steps"] += ctx.steps
        for group in runtime._groups.values():
            for (src, dst), channel in group.matrix.channels.items():
                profile(src)["sent"] += channel.sent
                profile(dst)["received"] += channel.received
        if self.meter is not None:
            for color, (hits, misses) in \
                    self.meter.traffic_by_color.items():
                entry = profile(color)
                entry["llc_hits"] = hits
                entry["llc_misses"] = misses
        return profiles

    def profiles(self) -> Dict[str, object]:
        """Both profile families, JSON-ready."""
        return {
            "colors": self.color_profiles(),
            "chunks": dict(self.runtime.stats.per_chunk)
            if self.runtime is not None else {},
        }

    # -- export ------------------------------------------------------------------

    def write_trace(self, path: str) -> str:
        if self.tracer is None:
            raise ValueError("Observability was created with "
                             "trace=False; no trace to write")
        return self.tracer.write_chrome(path)

    def metrics_text(self) -> str:
        return metrics_to_text(self.publish())

    def metrics_json(self) -> str:
        return metrics_to_json(self.publish())
