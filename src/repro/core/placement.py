"""Cost-aware partition placement (ROADMAP item 3).

The partitioner places code purely by color: every chunk lives in its
color's module and every chunk participates in every sync barrier of
its function.  This module closes the loop between the SGX cost model
(:mod:`repro.sgx.costmodel`) and placement:

1. :class:`PartitionGraph` — an explicit graph over the protocol the
   :class:`~repro.core.partition.PartitionPlanner` decided on.  Nodes
   are chunks ``(spec, color)`` with their color constraints
   (instruction counts, colored-instruction counts, hosted visible
   effects); edges are the protocol messages between them — ``spawn``,
   ``value`` (cont) and ``token`` — weighted by the
   :class:`~repro.sgx.costmodel.CostParams` message cost, with the
   enclave LLC-miss factor applied to edges that cross an enclave
   boundary and a static ``8^loop-depth`` execution-frequency
   estimate.

2. :class:`PlacementPolicy` — a pluggable decision procedure over the
   graph.  Policies may only relocate *color-neutral* instructions:
   the colored instructions of a chunk are pinned to their enclave by
   the type system, so the only thing a policy can legally move across
   the cut is protocol code.  Concretely, the shipped policies elide
   the sync-barrier token participation of chunks that provably host
   **zero visible effects** (§7.3.3: a token from an effect-free chunk
   cannot reorder any observable action, so the pair is dead
   synchronization weight).  Decisions are *pairwise consistent* by
   construction — the token sender and the waiting receiver both
   filter by the same per-spec exempt set — and are re-checked by
   :func:`verify_decisions` before use and :func:`verify_placement`
   after materialization.

   * ``none`` — today's color-home placement, bit-identical output.
   * ``kl`` — Kernighan–Lin-style boundary refinement: iterative
     gain-ranked moves over the token edges, locking each moved node.
   * ``profile`` — the same move set, but gains are gated and scaled
     by *measured* per-channel traffic from a previous run
     (:func:`profile_from_runtime`, persisted with
     :func:`save_profile`/:func:`load_profile`).

3. Reporting — :func:`partition_stats` (the per-color table behind
   ``repro analyze --partition-stats``) and :func:`placement_report`
   (the before/after message + modeled-cost summary behind
   ``BENCH_partition.json``).
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.core.analysis import AnalysisResult, location_color
from repro.core.colors import F, is_named
from repro.core.partition import (
    PartitionPlanner,
    PartitionedProgram,
    SpecPlan,
    chunk_name,
)
from repro.errors import PlacementError
from repro.ir.instructions import Call, Instruction, Load, Store
from repro.ir.module import Function
from repro.ir.values import GlobalVariable, Value
from repro.sgx.costmodel import MACHINE_A, CostParams

#: Static execution-frequency estimate: each loop level multiplies
#: expected executions by this factor (capped, so deeply nested CFGs
#: cannot overflow the cost model).
LOOP_WEIGHT = 8
LOOP_DEPTH_CAP = 4


# == the partition graph =======================================================


@dataclass
class ChunkNode:
    """One chunk ``spec@color`` with its color constraints."""

    spec: str
    color: str
    #: instructions kept in this chunk before DCE
    instructions: int = 0
    #: instructions *colored* with this chunk's color — the
    #: secret-typed code the type system pins here
    colored_instructions: int = 0
    #: visible effects (§7.3.3) whose barrier home is this chunk;
    #: a nonzero count pins the node as a barrier participant
    effects: int = 0
    #: visible effects that are *external calls* (printf &c.) — always
    #: observable, unlike an untrusted store nobody reads back
    external_calls: int = 0
    #: globals this chunk's kept instructions store
    stores: Set[str] = field(default_factory=set)
    #: separately-sent messages out of / into this chunk (call
    #: replies, §7.3.2 transfers, interface replies).  These survive
    #: barrier elision and keep the chunk *loss-coupled*: if its spawn
    #: is dropped, either a peer blocks receiving from it or a message
    #: to it stays pending — a typed DeadlockFault either way.
    separate_out: int = 0
    separate_in: int = 0
    #: call sites in this chunk that spawn other chunks
    spawn_sites: int = 0
    #: whether this chunk arrives via a (droppable) spawn message
    spawned: bool = False

    @property
    def name(self) -> str:
        return chunk_name(self.spec, self.color)

    @property
    def pinned(self) -> bool:
        """Whether the node must keep its barrier participation: it
        hosts visible effects whose ordering the tokens protect."""
        return self.effects > 0


@dataclass
class FlowEdge:
    """One protocol flow between two chunks of a spec."""

    spec: str
    kind: str  # "spawn" | "value" | "token"
    src: str
    dst: str
    #: frequency-weighted static message-count estimate
    count: float
    #: modeled cycles for the estimated traffic
    cycles: float
    crosses_enclave: bool = False


class PartitionGraph:
    """Protocol graph over a planned (not yet materialized) partition.

    Built from the exact :class:`~repro.core.partition.SpecPlan`
    decisions the partitioner will materialize, so what a policy
    optimizes is what the runtime will actually send.
    """

    def __init__(self, analysis: AnalysisResult,
                 planner: PartitionPlanner,
                 params: Optional[CostParams] = None):
        self.analysis = analysis
        self.planner = planner.plan()
        self.params = params if params is not None else MACHINE_A
        self.untrusted = analysis.untrusted
        self.nodes: Dict[tuple, ChunkNode] = {}
        self.edges: List[FlowEdge] = []
        #: global name -> chunks whose kept instructions load it
        self._loaders: Dict[str, Set[tuple]] = {}
        self._build()

    # -- construction ----------------------------------------------------------

    def _edge_cycles(self, src: str, dst: str, count: float) -> tuple:
        """Modeled cycles for ``count`` messages on ``src -> dst``: the
        lock-free FIFO push/pop plus the memory-encryption surcharge on
        the cache-line transfer when either endpoint is an enclave."""
        p = self.params
        per_message = p.privagic_message_cycles
        crosses = is_named(src) or is_named(dst)
        if crosses:
            per_message += p.llc_miss_cycles * (p.enclave_miss_factor - 1.0)
        return count * per_message, crosses

    def _add_edge(self, spec: str, kind: str, src: str, dst: str,
                  count: float) -> None:
        if count <= 0 or src == dst:
            return
        cycles, crosses = self._edge_cycles(src, dst, count)
        self.edges.append(FlowEdge(spec, kind, src, dst, count, cycles,
                                   crosses))

    def _block_freqs(self, fn: Function) -> Dict[object, float]:
        """``8^loop-depth`` per block, loop depth from natural loops
        (back edges found via the cached dominator tree)."""
        depths = {block: 0 for block in fn.blocks}
        try:
            dom = self.planner.cache.dominators(fn)
        except Exception:
            return {block: 1.0 for block in fn.blocks}
        for head in fn.blocks:
            try:
                backs = [p for p in head.predecessors
                         if p in depths and dom.dominates(head, p)]
            except Exception:
                continue
            if not backs:
                continue
            body = {head}
            stack = list(backs)
            while stack:
                block = stack.pop()
                if block in body or block not in depths:
                    continue
                body.add(block)
                stack.extend(block.predecessors)
            for block in body:
                depths[block] += 1
        return {block: float(LOOP_WEIGHT ** min(depth, LOOP_DEPTH_CAP))
                for block, depth in depths.items()}

    def _build(self) -> None:
        planner = self.planner
        for plan in planner.plans.values():
            spec = plan.fa.fn.name
            freqs = self._block_freqs(plan.fa.fn)

            def freq(value: Value) -> float:
                if isinstance(value, Instruction) and \
                        value.parent is not None:
                    return freqs.get(value.parent, 1.0)
                return 1.0

            for chunk in plan.chunks:
                self.nodes[(spec, chunk)] = ChunkNode(spec, chunk)
            for instr in plan.fa.fn.instructions():
                for chunk in plan.chunks:
                    if planner._kept_in_chunk(plan, instr, chunk):
                        node = self.nodes[(spec, chunk)]
                        node.instructions += 1
                        self._note_memory(node, instr)
                color = plan.fa.inst_colors.get(instr)
                if color is not None and (spec, color) in self.nodes:
                    self.nodes[(spec, color)].colored_instructions += 1
                if planner._is_visible_effect(plan, instr):
                    home = planner._barrier_home(plan, instr)
                    node = self.nodes.get((spec, home))
                    if node is not None:
                        node.effects += 1
                        if isinstance(instr, Call):
                            node.external_calls += 1
                    for other in plan.chunks - {home}:
                        self._add_edge(spec, "token", other, home,
                                       freq(instr))
            self._build_call_edges(plan, spec, freq)
            self._build_transfer_edges(plan, spec, freq)
        self._build_interface_edges()

    def _note_memory(self, node: ChunkNode, instr: Instruction) -> None:
        if isinstance(instr, Store):
            pointer = instr.ptr
            if isinstance(pointer, GlobalVariable):
                node.stores.add(pointer.name)
        elif isinstance(instr, Load):
            pointer = instr.ptr
            if isinstance(pointer, GlobalVariable):
                self._loaders.setdefault(pointer.name, set()).add(
                    (node.spec, node.color))

    def _spawn_target(self, caller_spec: str, callee_spec: str,
                      dest: str) -> Optional[ChunkNode]:
        """The node a spawn lands on: the callee spec's chunk, or the
        caller's replica for a demand-replicated pure-F callee."""
        return self.nodes.get((callee_spec, dest)) \
            or self.nodes.get((caller_spec, dest))

    def _build_call_edges(self, plan: SpecPlan, spec: str, freq) -> None:
        for info in plan.call_sites.values():
            f_args = sum(1 for a in info.call.args
                         if plan.fa.color_of(a) == F)
            call_freq = freq(info.call)
            leader = self.nodes.get((spec, info.leader))
            for dest in info.spawns:
                # One spawn message plus the inline cont payload (the
                # payload dies with a dropped spawn, so it is not a
                # loss coupling).
                self._add_edge(spec, "spawn", info.leader, dest,
                               call_freq)
                self._add_edge(spec, "value", info.leader, dest,
                               f_args * call_freq)
                target = self._spawn_target(spec, info.callee_spec,
                                            dest)
                if target is not None:
                    target.spawned = True
            if leader is not None and info.spawns:
                leader.spawn_sites += 1
            if not info.direct and info.reply_to is not None and \
                    info.sender is not None:
                # The callee trampoline's reply carrying the result.
                self._add_edge(spec, "value", info.reply_to, info.sender,
                               call_freq)
                src = self._spawn_target(spec, info.callee_spec,
                                         info.reply_to)
                if src is not None:
                    src.separate_out += 1
                dst = self.nodes.get((spec, info.sender))
                if dst is not None:
                    dst.separate_in += 1

    def _build_transfer_edges(self, plan: SpecPlan, spec: str,
                              freq) -> None:
        for value, dests in plan.sends.items():
            src = self.planner._sender_of(plan, value)
            for dest in dests:
                self._add_edge(spec, "value", src, dest, freq(value))
                src_node = self.nodes.get((spec, src))
                if src_node is not None:
                    src_node.separate_out += 1
                dst_node = self.nodes.get((spec, dest))
                if dst_node is not None:
                    dst_node.separate_in += 1

    def _build_interface_edges(self) -> None:
        """Entry interfaces spawn the enclave chunks once per
        invocation and may wait for a reply (§7.3.4)."""
        for spec in self.analysis.entry_specs.values():
            plan = self.planner.plans.get(spec)
            if plan is None:
                continue
            enclave_chunks = sorted(plan.chunks - {self.untrusted})
            has_untrusted = self.untrusted in plan.chunks
            f_args = sum(1 for c in plan.fa.arg_colors if c == F)
            for dest in enclave_chunks:
                self._add_edge(spec, "spawn", self.untrusted, dest, 1.0)
                self._add_edge(spec, "value", self.untrusted, dest,
                               float(f_args))
                node = self.nodes.get((spec, dest))
                if node is not None:
                    node.spawned = True
            if not has_untrusted and enclave_chunks:
                replier = min(enclave_chunks)
                self._add_edge(spec, "value", replier,
                               self.untrusted, 1.0)
                node = self.nodes.get((spec, replier))
                if node is not None:
                    # The interface blocks on this reply: losing the
                    # replier is always a detected deadlock.
                    node.separate_out += 1

    # -- queries ---------------------------------------------------------------

    def specs(self) -> List[str]:
        return sorted({spec for spec, _ in self.nodes})

    def node(self, spec: str, color: str) -> Optional[ChunkNode]:
        return self.nodes.get((spec, color))

    def spec_nodes(self, spec: str) -> List[ChunkNode]:
        return [node for (s, _), node in sorted(self.nodes.items())
                if s == spec]

    def token_edges_from(self, spec: str, color: str) -> List[FlowEdge]:
        return [e for e in self.edges
                if e.spec == spec and e.kind == "token" and e.src == color]

    def channel_static_count(self, src: str, dst: str,
                             kind: str) -> float:
        return sum(e.count for e in self.edges
                   if e.kind == kind and e.src == src and e.dst == dst)

    def message_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {"spawn": 0.0, "value": 0.0,
                                    "token": 0.0}
        for edge in self.edges:
            totals[edge.kind] = totals.get(edge.kind, 0.0) + edge.count
        totals["total"] = sum(totals.values())
        return totals

    def modeled_cost(self, decisions: Optional["PlacementDecisions"]
                     = None) -> float:
        """Total modeled cycles of the protocol traffic, with the
        token edges a decision set elides removed."""
        total = 0.0
        for edge in self.edges:
            if decisions is not None and edge.kind == "token" and \
                    edge.src in decisions.barrier_exempt_chunks(edge.spec):
                continue
            total += edge.cycles
        return total

    def cross_enclave_count(self, decisions: Optional["PlacementDecisions"]
                            = None) -> float:
        """Estimated messages that cross an enclave boundary."""
        total = 0.0
        for edge in self.edges:
            if not edge.crosses_enclave:
                continue
            if decisions is not None and edge.kind == "token" and \
                    edge.src in decisions.barrier_exempt_chunks(edge.spec):
                continue
            total += edge.count
        return total

    # -- loss coupling (the chaos-contract side conditions) --------------------

    def writes_read_elsewhere(self, node: ChunkNode) -> bool:
        """Whether some *other* chunk loads a global this one stores —
        i.e. losing this chunk's stores could change observable
        results downstream."""
        for name in node.stores:
            for reader in self._loaders.get(name, ()):
                if reader != (node.spec, node.color):
                    return True
        return False

    def exemptible(self, node: ChunkNode) -> bool:
        """Whether eliding this chunk's barrier participation keeps
        the chaos differential contract (identical or typed-fault).

        Barrier tokens double as *liveness coupling*: in the
        unoptimized protocol, a chunk whose spawn is dropped either
        blocks its barrier home's token receive or leaves its own
        token send pending — a typed DeadlockFault either way.  A
        chunk may go token-silent only if its loss stays detectable or
        provably unobservable:

        * it hosts no visible effects (``pinned`` — the existing
          ordering constraint), and
        * its loss is still *detected* (a separately-sent message
          couples it: a call reply, a §7.3.2 transfer, an interface
          reply), or its loss is *harmless*: it stores no global any
          other chunk reads and spawns no sub-chunks whose own
          couplings would silently vanish with it.
        """
        if node.pinned:
            return False
        if node.separate_out > 0 or node.separate_in > 0:
            return True
        return not self.writes_read_elsewhere(node) \
            and node.spawn_sites == 0

    def home_coverage_ok(self, spec: str, home_color: str,
                         exempt: Set[str]) -> bool:
        """Whether a barrier home stays loss-coupled under ``exempt``.

        A home hosting *observable* effects (an external call, or an
        untrusted store some other chunk reads back) must keep at
        least one separately-sent in-edge — a token from a non-exempt
        participant, a transfer, or a reply — so that dropping the
        home's spawn still strands a message.  Homes that are not
        channel-spawned (the untrusted driver side) need no coverage.
        """
        home = self.node(spec, home_color)
        if home is None or not home.spawned:
            return True
        if home.external_calls == 0 and \
                not self.writes_read_elsewhere(home):
            return True
        if home.separate_in > 0:
            return True
        senders = {e.src for e in self.edges
                   if e.spec == spec and e.kind == "token"
                   and e.dst == home_color}
        return bool(senders - set(exempt))


# == decisions =================================================================


@dataclass
class PlacementDecisions:
    """The output of a placement policy, applied by the partitioner.

    ``barrier_exempt`` maps a spec name to the set of its chunks that
    skip sync-barrier token traffic.  Both barrier sides filter by
    this same set (see ``Partitioner._emit_barrier``), so every elided
    token send has its matching elided token recv by construction.
    """

    policy: str = "none"
    barrier_exempt: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: modeled cycles the decisions save (policy-estimated)
    gain_cycles: float = 0.0

    def barrier_exempt_chunks(self, spec: str) -> FrozenSet[str]:
        return self.barrier_exempt.get(spec, frozenset())

    @property
    def moves(self) -> int:
        return sum(len(chunks) for chunks in self.barrier_exempt.values())

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "barrier_exempt": {spec: sorted(chunks) for spec, chunks
                               in sorted(self.barrier_exempt.items())},
            "gain_cycles": round(self.gain_cycles, 1),
            "moves": self.moves,
        }


# == policies ==================================================================


class PlacementPolicy:
    """Decision procedure over a :class:`PartitionGraph`.

    The contract: a policy may only affect *color-neutral* protocol
    instructions.  Colored (secret-typed) instructions never change
    modules — :func:`verify_decisions` and :func:`verify_placement`
    re-check this after every policy run.
    """

    name = "?"

    def decide(self, graph: PartitionGraph) -> PlacementDecisions:
        raise NotImplementedError


class NonePolicy(PlacementPolicy):
    """Color-home placement: exactly the historical partitioner."""

    name = "none"

    def decide(self, graph: PartitionGraph) -> PlacementDecisions:
        return PlacementDecisions(policy=self.name)


class KLPolicy(PlacementPolicy):
    """Kernighan–Lin-style boundary refinement over the token edges.

    Per spec, repeatedly pick the unlocked, exemptible chunk whose
    move (dropping its barrier participation out of the cross-enclave
    cut) has the highest positive gain, apply it, lock it, and
    recompute — stopping when no positive-gain move remains.  A move
    is legal only when it keeps the chaos differential contract:
    the chunk must be effect-free *and* loss-coupled-or-harmless
    (:meth:`PartitionGraph.exemptible`), and every barrier home it
    reports to must stay loss-coupled
    (:meth:`PartitionGraph.home_coverage_ok`).
    """

    name = "kl"

    def decide(self, graph: PartitionGraph) -> PlacementDecisions:
        exempt: Dict[str, Set[str]] = {}
        total_gain = 0.0
        for spec in graph.specs():
            locked: Set[str] = set()
            while True:
                best: Optional[ChunkNode] = None
                best_gain = 0.0
                for node in graph.spec_nodes(spec):
                    if node.color in locked or \
                            not graph.exemptible(node):
                        continue
                    tentative = exempt.get(spec, set()) | {node.color}
                    homes = {e.dst for e in graph.token_edges_from(
                        spec, node.color)}
                    if not all(graph.home_coverage_ok(spec, home,
                                                      tentative)
                               for home in homes):
                        continue
                    gain = self._gain(graph, spec, node)
                    if gain > best_gain:
                        best, best_gain = node, gain
                if best is None:
                    break
                exempt.setdefault(spec, set()).add(best.color)
                locked.add(best.color)
                total_gain += best_gain
        decisions = PlacementDecisions(
            policy=self.name,
            barrier_exempt={spec: frozenset(chunks)
                            for spec, chunks in exempt.items()},
            gain_cycles=total_gain)
        verify_decisions(graph, decisions)
        return decisions

    def _gain(self, graph: PartitionGraph, spec: str,
              node: ChunkNode) -> float:
        return sum(e.cycles
                   for e in graph.token_edges_from(spec, node.color))


class ProfilePolicy(KLPolicy):
    """KL move set, but gains gated and scaled by measured traffic.

    A move only has gain if the profiled run actually pushed token
    messages on the edge's channel; the measured channel count is
    apportioned to the edge by its share of the channel's static
    estimate.  Code that a real workload never synchronized through
    is left alone even when the static model would move it.
    """

    name = "profile"

    def __init__(self, profile: Optional[dict]):
        if profile is None:
            raise PlacementError(
                "the profile policy needs measured traffic: run once "
                "with --profile-out, then pass --profile-in")
        self.channels: Dict[str, Dict[str, int]] = \
            dict(profile.get("channels", {}))

    def _gain(self, graph: PartitionGraph, spec: str,
              node: ChunkNode) -> float:
        gain = 0.0
        for edge in graph.token_edges_from(spec, node.color):
            measured = self.channels.get(
                f"{edge.src}->{edge.dst}", {}).get("token", 0)
            if measured <= 0:
                continue
            static_total = graph.channel_static_count(
                edge.src, edge.dst, "token")
            share = edge.count / static_total if static_total else 0.0
            per_message = edge.cycles / edge.count if edge.count else 0.0
            gain += measured * share * per_message
        return gain


POLICIES = ("none", "kl", "profile")


def policy_by_name(name: str,
                   profile: Optional[dict] = None) -> PlacementPolicy:
    """Look up a placement policy by name.

    Unknown names raise a :class:`~repro.errors.PlacementError` with a
    did-you-mean hint and the valid choices (mirrors
    :func:`repro.workloads.ycsb.workload_by_name`).
    """
    normalized = name.strip().lower()
    if normalized == "none":
        return NonePolicy()
    if normalized == "kl":
        return KLPolicy()
    if normalized == "profile":
        return ProfilePolicy(profile)
    close = difflib.get_close_matches(normalized, POLICIES, n=1,
                                      cutoff=0.4)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    raise PlacementError(
        f"unknown placement policy {name!r}{hint} "
        f"(choose from: {', '.join(POLICIES)})")


# == verification ==============================================================


def verify_decisions(graph: PartitionGraph,
                     decisions: PlacementDecisions) -> None:
    """Re-check a policy's decisions against the color constraints.

    * every exempted chunk must exist in its spec's plan;
    * an exempted chunk must host **zero** visible effects — its token
      is what orders its own observables against everyone else's, so
      an effect-hosting chunk may never go silent;
    * an exempted chunk must be loss-coupled or provably harmless to
      lose (:meth:`PartitionGraph.exemptible`), and every barrier home
      must keep a loss coupling
      (:meth:`PartitionGraph.home_coverage_ok`) — otherwise a dropped
      spawn could be absorbed silently, breaking the chaos
      differential contract;
    * exemption never moves instructions between modules, so colored
      code stays in its enclave by construction — asserted again
      structurally by :func:`verify_placement` after materialization.
    """
    for spec, chunks in decisions.barrier_exempt.items():
        for color in chunks:
            node = graph.node(spec, color)
            if node is None:
                raise PlacementError(
                    f"placement decision exempts unknown chunk "
                    f"{chunk_name(spec, color)}")
            if node.pinned:
                raise PlacementError(
                    f"placement decision would silence "
                    f"{chunk_name(spec, color)}, which hosts "
                    f"{node.effects} visible effect(s) the barrier "
                    f"tokens order")
            if not graph.exemptible(node):
                raise PlacementError(
                    f"placement decision exempts "
                    f"{chunk_name(spec, color)}, whose loss would be "
                    f"neither detected nor harmless (stores read "
                    f"elsewhere, or sub-spawns, with no surviving "
                    f"loss coupling)")
        homes = {e.dst for e in graph.edges
                 if e.spec == spec and e.kind == "token"}
        for home in homes:
            if not graph.home_coverage_ok(spec, home, set(chunks)):
                raise PlacementError(
                    f"placement decision leaves effect-hosting chunk "
                    f"{chunk_name(spec, home)} without any loss "
                    f"coupling — a dropped spawn would silently skip "
                    f"its visible effects")


def verify_placement(program: PartitionedProgram) -> None:
    """Structural re-check after materialization: secret-typed code
    never left its enclave.

    * every chunk function lives in the module of its color;
    * no module loads or stores through another enclave's colored
      global (untrusted/shared globals are exempt);
    * colored globals are placed only in their own enclave module.
    """
    for name, color in program.chunk_colors.items():
        module = program.modules.get(color)
        if module is None or name not in module.functions:
            raise PlacementError(
                f"chunk {name} is registered for color {color} but "
                f"not placed in that module")
    for color, module in program.modules.items():
        for gv in module.globals.values():
            home = location_color(gv.value_type, program.mode)
            if is_named(home) and home != color:
                raise PlacementError(
                    f"{home}-colored global @{gv.name} placed in "
                    f"module {color}")
        for fn in module.defined_functions():
            for instr in fn.instructions():
                if not isinstance(instr, (Load, Store)):
                    continue
                pointer = instr.ptr
                if not isinstance(pointer, GlobalVariable):
                    continue
                home = location_color(pointer.value_type, program.mode)
                if is_named(home) and home != color:
                    raise PlacementError(
                        f"module {color} accesses {home}-colored "
                        f"global @{pointer.name} in {fn.name} — "
                        f"secret-typed code was relocated")


# == profiles ==================================================================

PROFILE_VERSION = 1


def profile_from_runtime(runtime) -> dict:
    """Extract a placement profile from a finished runtime: the
    measured per-channel message counts and kind totals."""
    return {
        "version": PROFILE_VERSION,
        "channels": runtime.channel_traffic(),
        "messages": runtime.message_stats(),
    }


def save_profile(path: str, profile: dict) -> None:
    with open(path, "w") as handle:
        json.dump(profile, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_profile(path: str) -> dict:
    with open(path) as handle:
        profile = json.load(handle)
    if not isinstance(profile, dict) or "channels" not in profile:
        raise PlacementError(
            f"{path} is not a placement profile (expected a JSON "
            f"object with a 'channels' map; see --profile-out)")
    return profile


# == driver ====================================================================


def optimize_placement(analysis: AnalysisResult, policy: str = "none",
                       params: Optional[CostParams] = None,
                       profile: Optional[dict] = None, cache=None):
    """Plan the partition, build the graph, run one policy.

    Returns ``(planner, graph, decisions)`` — the planner is shared
    with the subsequent partition pass so protocol decisions are
    computed once.
    """
    planner = PartitionPlanner(analysis, cache=cache).plan()
    graph = PartitionGraph(analysis, planner, params)
    decisions = policy_by_name(policy, profile=profile).decide(graph)
    verify_decisions(graph, decisions)
    return planner, graph, decisions


# == reporting =================================================================


def placement_report(graph: PartitionGraph,
                     decisions: PlacementDecisions) -> dict:
    """Before/after summary of one policy run (feeds the bench)."""
    base_cost = graph.modeled_cost()
    opt_cost = graph.modeled_cost(decisions)
    report = {
        "policy": decisions.policy,
        "decisions": decisions.as_dict(),
        "static_messages": {kind: round(count, 1) for kind, count
                            in graph.message_totals().items()},
        "cross_enclave_estimate": {
            "none": round(graph.cross_enclave_count(), 1),
            decisions.policy: round(
                graph.cross_enclave_count(decisions), 1),
        },
        "modeled_cost_cycles": {
            "none": round(base_cost, 1),
            decisions.policy: round(opt_cost, 1),
        },
    }
    if base_cost > 0:
        report["modeled_savings_pct"] = round(
            100.0 * (base_cost - opt_cost) / base_cost, 2)
    return report


def partition_stats(program: PartitionedProgram) -> List[dict]:
    """Per-color placement table: chunks, instructions, TCB size and
    protocol boundary call sites (the `-partition-stats` UX of the
    SNIPPETS partitioning toolchain)."""
    rows = []
    for color in program.colors:
        module = program.modules[color]
        chunks = sum(1 for name, c in program.chunk_colors.items()
                     if c == color and name in module.functions)
        instructions = module.instruction_count()
        boundary = 0
        for fn in module.defined_functions():
            for instr in fn.instructions():
                if isinstance(instr, Call) and \
                        isinstance(instr.callee, Function) and \
                        instr.callee.name.startswith("__privagic_"):
                    boundary += 1
        rows.append({
            "color": color,
            "enclave": color != program.untrusted,
            "chunks": chunks,
            "instructions": instructions,
            "tcb_instructions": (instructions
                                 if color != program.untrusted else 0),
            "boundary_call_sites": boundary,
        })
    return rows


def format_partition_stats(rows: Iterable[dict]) -> str:
    headers = ["color", "kind", "chunks", "instrs", "tcb", "boundary"]
    table = [[row["color"],
              "enclave" if row["enclave"] else "untrusted",
              str(row["chunks"]), str(row["instructions"]),
              str(row["tcb_instructions"] or "-"),
              str(row["boundary_call_sites"])]
             for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in table))
              if table else len(headers[i]) for i in range(len(headers))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
