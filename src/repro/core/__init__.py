"""repro.core — the paper's contribution.

* :mod:`repro.core.colors` — the color system of Table 2 (F, U, S and
  named enclave colors) and the compatibility relation.
* :mod:`repro.core.typesystem` — the secure type system of Table 3:
  per-instruction rule checking, register-color inference and the
  implicit-indirect-leak block coloring of Rule 4.
* :mod:`repro.core.inference` — the stabilizing algorithm (§5.2) with
  per-call-site function specialization (§6.2) and entry points.
* :mod:`repro.core.structs` — allocation-site analysis and the
  multi-color structure rewriting of §7.2.
* :mod:`repro.core.globals_rewrite` — the shared-block rewriting of S
  globals (§7.1).
* :mod:`repro.core.partitioner` — chunk generation and call-site
  rewriting (§7.3).
* :mod:`repro.core.compiler` — the Privagic compiler driver (Figure 5).
"""

from repro.core.colors import (
    F,
    U,
    S,
    compatible,
    is_free,
    is_untrusted,
    join,
    untrusted_color,
)
from repro.core.analysis import AnalysisResult, analyze_module

__all__ = [
    "F", "U", "S",
    "compatible", "is_free", "is_untrusted", "join", "untrusted_color",
    "AnalysisResult", "analyze_module",
]
