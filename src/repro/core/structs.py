"""Multi-color structure rewriting (paper §7.2).

A structure whose fields carry two or more colors (Figure 1's
``account`` with a blue ``name`` and a red ``balance``) cannot stay
packed in memory: an enclave is contiguous in the virtual address
space.  Privagic introduces one level of indirection:

* the structure *shell* is allocated in unsafe memory, with each
  colored field replaced by an (uncolored) pointer slot;
* the allocation site additionally allocates each colored field inside
  its enclave and stores the field pointers into the shell;
* every access to a colored field becomes shell-GEP → load pointer →
  use, i.e. ``s->f`` turns into ``s->ind->f`` (§7.2).

Because the enclave must then load a pointer from unsafe memory, this
only types in **relaxed** mode; in hardened mode a program that
allocates a multi-color structure is rejected here with the §8
restriction.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.errors import PartitionError
from repro.core.colors import HARDENED, RELAXED, is_named
from repro.ir.instructions import Alloca, Call, Cast, GEP, Store
from repro.ir.module import Function, Module
from repro.ir.types import (
    ArrayType,
    FunctionType,
    IRType,
    PointerType,
    StructField,
    StructType,
    I8,
    I64,
)
from repro.ir.values import Constant


def _field_color(field_type: IRType) -> str:
    t = field_type
    while isinstance(t, (PointerType, ArrayType)):
        t = t.pointee if isinstance(t, PointerType) else t.element
    return t.color


def multicolor_structs(module: Module) -> List[StructType]:
    return [st for st in module.structs.values() if st.is_multicolor]


def rewrite_multicolor_structs(module: Module, mode: str) -> int:
    """Rewrite every multi-color struct; returns how many were
    rewritten.  Raises :class:`PartitionError` in hardened mode when a
    multi-color struct is actually allocated (§8)."""
    structs = multicolor_structs(module)
    if not structs:
        return 0
    rewritten = 0
    for struct in structs:
        if _struct_is_allocated(module, struct):
            if mode == HARDENED:
                raise PartitionError(
                    f"struct {struct.name} mixes colors "
                    f"{list(struct.colors_used())}; multi-color "
                    f"structures require relaxed mode (paper §8)")
            _rewrite_struct(module, struct)
            rewritten += 1
    return rewritten


def _struct_is_allocated(module: Module, struct: StructType) -> bool:
    for fn in module.defined_functions():
        for instr in fn.instructions():
            if isinstance(instr, Alloca) and \
                    instr.allocated_type == struct:
                return True
            if isinstance(instr, Cast) and _casts_to(instr, struct):
                return True
    for gv in module.globals.values():
        t = gv.value_type
        while isinstance(t, ArrayType):
            t = t.element
        if t == struct:
            raise PartitionError(
                f"multi-color struct {struct.name} as a global "
                f"variable is not supported; allocate it on the heap")
    return False


def _casts_to(cast: Cast, struct: StructType) -> bool:
    t = cast.to_type
    return isinstance(t, PointerType) and t.pointee == struct


def _rewrite_struct(module: Module, struct: StructType) -> None:
    colored: Dict[int, Tuple[IRType, str]] = {}
    for i, field in enumerate(struct.fields):
        color = _field_color(field.type)
        if color is not None and is_named(color):
            colored[i] = (field.type, color)
    if not colored:
        return

    old_size = struct.size_slots()

    # Collect rewrite targets before mutating the type.
    field_geps: List[GEP] = []
    allocation_casts: List[Cast] = []
    allocas: List[Alloca] = []
    for fn in module.defined_functions():
        for instr in fn.instructions():
            if isinstance(instr, GEP):
                sf = instr.struct_field()
                if sf is not None and sf[0] is struct and \
                        sf[1] in colored:
                    field_geps.append(instr)
            elif isinstance(instr, Cast) and _casts_to(instr, struct):
                allocation_casts.append(instr)
            elif isinstance(instr, Alloca) and \
                    instr.allocated_type == struct:
                allocas.append(instr)

    # Mutate the struct in place: colored fields become opaque pointer
    # slots living in the (unsafe) shell.
    shell_fields = []
    for i, field in enumerate(struct.fields):
        if i in colored:
            shell_fields.append(StructField(field.name, PointerType(I8)))
        else:
            shell_fields.append(field)
    struct.set_body(shell_fields)

    alloc_fn = _get_privagic_alloc(module)

    # Fix allocation sites: resize the malloc and allocate the colored
    # fields in their enclaves.
    for cast in allocation_casts:
        source = cast.value
        if isinstance(source, Call) and _callee_name(source) == "malloc":
            size_arg = source.args[0]
            if isinstance(size_arg, Constant) and \
                    int(size_arg.value) == old_size:
                source.set_operand(1, Constant(I64, struct.size_slots()))
        _insert_field_allocations(cast, struct, colored, alloc_fn)
    for alloca in allocas:
        _insert_field_allocations(alloca, struct, colored, alloc_fn)

    # Rewrite field accesses: s->f becomes s->ind->f.
    for gep in field_geps:
        _rewrite_field_access(gep, colored)


def _callee_name(call: Call) -> str:
    callee = call.callee
    return getattr(callee, "name", "")


def _get_privagic_alloc(module: Module) -> Function:
    fn = module.functions.get("__privagic_alloc")
    if fn is None:
        fn = Function("__privagic_alloc",
                      FunctionType(PointerType(I8),
                                   [PointerType(I8), I64]),
                      attributes=["extern", "within"])
        module.add_function(fn)
    return fn


def _insert_field_allocations(anchor, struct: StructType, colored,
                              alloc_fn: Function) -> None:
    """After ``anchor`` (the shell pointer), allocate each colored
    field in its enclave and store the pointer into the shell slot."""
    block = anchor.parent
    index = block.instructions.index(anchor) + 1
    zero = Constant(I64, 0)
    for i in sorted(colored):
        field_type, color = colored[i]
        size = Constant(I64, field_type.size_slots())
        name_const = Constant(ArrayType(I8, len(color) + 1), color)
        alloc = Call(alloc_fn, [name_const, size],
                     name=f"{struct.name}.f{i}.{color}")
        block.insert(index, alloc)
        index += 1
        slot = GEP(anchor, [zero, Constant(I64, i)],
                   name=f"{struct.name}.slot{i}")
        block.insert(index, slot)
        index += 1
        block.insert(index, Store(alloc, slot))
        index += 1


def _rewrite_field_access(gep: GEP, colored) -> None:
    """Replace a GEP to a colored field by shell-GEP → load → cast."""
    from repro.ir.instructions import Load

    struct, field_i = gep.struct_field()
    field_type, color = colored[field_i]
    block = gep.parent
    # The GEP now addresses the i8* slot; retype its result.
    gep.type = PointerType(PointerType(I8))
    index = block.instructions.index(gep) + 1
    load = Load(gep, name=f"{struct.name}.ind{field_i}")
    # Users of the original GEP must use the casted field pointer; grab
    # them before wiring the load (which itself uses the GEP).
    users = [u for u in gep.users if u is not load]
    block.insert(index, load)
    cast = Cast("bitcast", load, PointerType(field_type),
                name=f"{struct.name}.fp{field_i}")
    block.insert(index + 1, cast)
    for user in users:
        user._replace_operand(gep, cast)
