"""Shared-block rewriting of S global variables (paper §7.1).

"An enclave is a shared library and it cannot use a symbol defined in
the untrusted part of the application [...] Privagic gathers all the S
variables in a shared data structure stored in unsafe memory and
replaces accordingly all the accesses to the S variables by accesses
to this structure.  When Privagic starts an enclave, it gives a
pointer to this structure to the enclave."

Our loader resolves symbols by object identity, so the default
pipeline does not *need* this rewriting (a documented substitution,
DESIGN.md §4) — but the transformation itself is part of the paper's
system, so it is implemented and tested here: it packs every uncolored
global into one ``__privagic_shared`` block and turns every direct
access into block-pointer + GEP, preserving semantics.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.analysis import location_color
from repro.core.colors import is_named
from repro.ir.instructions import GEP, Instruction
from repro.ir.module import Function, Module
from repro.ir.types import ArrayType, PointerType, StructField, StructType
from repro.ir.values import Constant, GlobalVariable

SHARED_BLOCK = "__privagic_shared"


def rewrite_shared_globals(module: Module, mode: str = "relaxed",
                           ) -> Tuple[GlobalVariable, List[str]]:
    """Pack the uncolored globals of ``module`` into one shared block.

    Returns the block global and the names of the packed variables.
    Colored globals (they live inside enclaves and resolve there) and
    string-literal constants (immutable, freely replicable) stay.
    """
    packed: List[GlobalVariable] = []
    for gv in list(module.globals.values()):
        if gv.name == SHARED_BLOCK:
            continue
        color = location_color(gv.value_type, mode)
        if is_named(color):
            continue
        if isinstance(gv.value_type, ArrayType) and \
                gv.initializer is not None and \
                isinstance(gv.initializer.value, str):
            continue  # interned string constants
        packed.append(gv)

    block_type = StructType(f"{SHARED_BLOCK}.t")
    block_type.set_body([StructField(gv.name, gv.value_type)
                         for gv in packed])
    module.add_struct(block_type)
    block = GlobalVariable(SHARED_BLOCK, block_type)
    module.add_global(block)

    # Rewrite every use of a packed global into a GEP off the block.
    index_of: Dict[GlobalVariable, int] = {
        gv: i for i, gv in enumerate(packed)}
    for fn in module.defined_functions():
        for instr in list(fn.instructions()):
            for op_index, op in enumerate(list(instr.operands)):
                if not isinstance(op, GlobalVariable) or \
                        op not in index_of:
                    continue
                gep = GEP(block,
                          [Constant_from_int(0),
                           Constant_from_int(index_of[op])],
                          name=f"shared.{op.name}")
                position = instr.parent.instructions.index(instr)
                instr.parent.insert(position, gep)
                instr.set_operand(op_index, gep)

    # Move the initializers into the block layout and drop the old
    # globals from the module table (their storage is the block now).
    for gv in packed:
        del module.globals[gv.name]
    block.initializer = _packed_initializer(block_type, packed)
    return block, [gv.name for gv in packed]


def Constant_from_int(value: int) -> Constant:
    from repro.ir.types import I64
    return Constant(I64, value)


def _packed_initializer(block_type: StructType,
                        packed: List[GlobalVariable]):
    values: List[object] = []
    for gv in packed:
        size = gv.value_type.size_slots()
        if gv.initializer is None:
            values.extend([0] * size)
        elif isinstance(gv.initializer.value, (list, tuple)):
            values.extend(gv.initializer.value)
        else:
            values.append(gv.initializer.value)
            values.extend([0] * (size - 1))
    return Constant(block_type, tuple(values))
