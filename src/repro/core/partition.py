"""Application partitioning (paper §7).

After the type analysis has colored every instruction, the partitioner
rewrites the program into one module per color:

* **Chunks** (§7.3.1).  For every specialized function ``f`` and every
  color ``C`` of its (transitive) color set, a chunk ``f@C`` is
  generated holding the ``C`` instructions of ``f`` plus a replica of
  its pure-F computation; dead replicas are removed by DCE.

* **Control flow** (Rule 4 payoff).  A conditional branch on a
  ``D``-colored condition only exists in the ``D`` chunk; every other
  chunk jumps straight to the branch's immediate postdominator — the
  influenced blocks contain only ``D`` instructions, so nothing is
  lost.

* **Calls** (§7.3.2).  If the caller chunk's color is in the callee's
  color set, the chunk calls the matching callee chunk directly.  The
  caller's *leader* chunk additionally sends ``spawn`` messages for
  the callee colors the caller does not have, carrying the F arguments
  (the ``cont`` payload); the runtime trampoline receives them and
  invokes the chunk.  In hardened mode, sending a computed F value to
  another enclave is refused (paper §7.3.2).

* **Value transfers** (the ``cont`` / ``wait`` machinery of §7.3.2).
  An F value that can only be produced in one chunk — a value loaded
  from S, the result of an external call, a declassified result — is
  sent with ``cont`` messages to the chunks that consume it.

* **Synchronization barriers** (§7.3.3).  Instructions with a visible
  effect (stores to S, external calls) wait for a token from every
  other chunk of the function, preserving the source's sequential
  order of observable actions.

* **Interface versions** (§7.3.4).  Every entry point and every
  address-taken function gets an interface function in the untrusted
  module that keeps the original name, spawns the missing chunks and
  runs the untrusted chunk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import PartitionError
from repro.core.analysis import (
    AnalysisResult,
    FunctionAnalysis,
    REPLICATED,
)
from repro.core.colors import F, HARDENED, S, U, is_named, is_untrusted
from repro.ir.cfg import DominatorTree
from repro.ir.instructions import (
    Alloca,
    Branch,
    Call,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Store,
)
from repro.ir.module import BasicBlock, Function, Module, clone_function
from repro.ir.printer import print_instruction
from repro.ir.types import (
    ArrayType,
    FunctionType,
    PointerType,
    I8,
    I64,
    VOID,
)
from repro.ir.values import (
    Argument,
    Constant,
    GlobalVariable,
    UndefValue,
    Value,
)
from repro.ir.passes.dce import dead_code_elimination

#: Names of the runtime primitives chunks call (implemented by
#: :mod:`repro.runtime`).
SPAWN = "__privagic_spawn"
SEND = "__privagic_send"
RECV = "__privagic_recv"
TOKEN_SEND = "__privagic_token_send"
TOKEN_RECV = "__privagic_token_recv"

_RUNTIME_SIGNATURES = {
    SPAWN: FunctionType(VOID, [PointerType(I8), PointerType(I8)],
                        vararg=True),
    SEND: FunctionType(VOID, [PointerType(I8), I64]),
    RECV: FunctionType(I64, [PointerType(I8)]),
    TOKEN_SEND: FunctionType(VOID, [PointerType(I8)]),
    TOKEN_RECV: FunctionType(VOID, [PointerType(I8)]),
}


def chunk_name(spec: str, color: str) -> str:
    return f"{spec}@{color}"


def _cstr(text: str) -> Constant:
    return Constant(ArrayType(I8, len(text) + 1), text)


class CallSiteInfo:
    """Static protocol decisions for one call site (§7.3.2)."""

    def __init__(self, call: Call, callee_spec: str,
                 direct: Set[str], spawns: Set[str],
                 leader: str, sender: Optional[str],
                 reply_to: Optional[str]):
        self.call = call
        self.callee_spec = callee_spec
        #: caller chunks that call a callee chunk directly
        self.direct = direct
        #: callee colors the leader must spawn
        self.spawns = spawns
        #: the caller chunk responsible for spawning
        self.leader = leader
        #: the caller chunk that ends up holding an F result
        self.sender = sender
        #: color whose trampoline must send the return value back
        #: (only when no caller chunk calls the callee directly)
        self.reply_to = reply_to


class SpecPlan:
    """Partitioning plan for one specialized function."""

    def __init__(self, fa: FunctionAnalysis):
        self.fa = fa
        #: transitive color set (own colors + callees')
        self.color_set_star: Set[str] = set(fa.color_set)
        #: chunks to generate
        self.chunks: Set[str] = set()
        self.leader: str = ""
        #: call -> CallSiteInfo
        self.call_sites: Dict[Call, CallSiteInfo] = {}
        #: value -> set of chunk colors where it is materialized,
        #: or None meaning "replicated everywhere"
        self.avail: Dict[Value, Optional[Set[str]]] = {}
        #: value -> sorted list of destination colors to send to
        self.sends: Dict[Value, List[str]] = {}
        #: (value, chunk) pairs that receive instead of compute
        self.recvs: Set[Tuple[Value, str]] = set()


class PartitionedProgram:
    """The output of :class:`Partitioner`.

    Attributes
    ----------
    modules:
        One :class:`~repro.ir.Module` per color.  The untrusted module
        (key :attr:`untrusted`) holds the interface functions keeping
        the original entry-point names.
    chunk_colors:
        chunk function name -> color (the runtime's dispatch table).
    chunk_args:
        chunk function name -> argument colors of its specialization
        (the trampoline uses this to slot cont-carried F arguments).
    """

    def __init__(self, analysis: AnalysisResult):
        self.analysis = analysis
        self.mode = analysis.mode
        self.untrusted = analysis.untrusted
        self.modules: Dict[str, Module] = {}
        self.chunk_colors: Dict[str, str] = {}
        self.chunk_args: Dict[str, Tuple[str, ...]] = {}
        self.interfaces: Dict[str, str] = {}
        self.reply_chunks: Dict[str, str] = {}

    @property
    def colors(self) -> List[str]:
        return sorted(self.modules)

    def enclave_colors(self) -> List[str]:
        return [c for c in self.colors if c != self.untrusted]

    def all_modules(self) -> List[Module]:
        return [self.modules[c] for c in self.colors]

    def tcb_instructions(self, color: str) -> int:
        """Instruction count inside the enclave ``color`` — the user
        code part of the Table 4 TCB metric."""
        return self.modules[color].instruction_count()

    def __repr__(self) -> str:
        sizes = {c: m.instruction_count() for c, m in self.modules.items()}
        return f"<PartitionedProgram {sizes}>"


class PartitionPlanner:
    """The *planning* half of partitioning: decides chunk sets, call
    protocols and value transfers without materializing any IR.

    Split out of :class:`Partitioner` so the placement optimizer
    (:mod:`repro.core.placement`) can build its partition graph from
    the exact protocol decisions the partitioner would make, run a
    policy over it, and hand both the plans and its decisions back to
    the materialization phase.  Planning is idempotent: :meth:`plan`
    computes once and is a no-op afterwards, so a planner can be
    shared between the ``optimize-placement`` pass and the
    ``partition`` pass of one pipeline run.
    """

    def __init__(self, analysis: AnalysisResult, cache=None):
        self.analysis = analysis
        if cache is None:
            from repro.pipeline.analyses import AnalysisCache
            cache = AnalysisCache()
        self.cache = cache
        self.mode = analysis.mode
        self.untrusted = analysis.untrusted
        self.plans: Dict[str, SpecPlan] = {}
        self._planned = False

    def plan(self) -> "PartitionPlanner":
        if self._planned:
            return self
        self._build_plans()
        for plan in self.plans.values():
            self._plan_call_sites(plan)
        for plan in self.plans.values():
            self._plan_transfers(plan)
        self._planned = True
        return self

    # == planning ================================================================

    def _build_plans(self) -> None:
        """Assign chunk sets: chunks(f) = the function's own color set
        (paper §7.3.1 — NOT transitive: main's color set in Figure 6 is
        {blue, U} even though it transitively reaches red).  Entry
        points and address-taken functions additionally get the
        untrusted chunk the interface invokes.  Pure-F functions are
        replicated on demand into every chunk that calls them."""
        for name, fa in self.analysis.functions.items():
            self.plans[name] = SpecPlan(fa)
        for name, plan in self.plans.items():
            plan.chunks = set(plan.color_set_star)
            is_entry = name in self.analysis.entry_specs.values()
            if is_entry or "address-taken" in plan.fa.fn.attributes:
                plan.chunks.add(self.untrusted)
        # Demand-driven replication of pure-F functions: every chunk of
        # a caller calls its own replica of a colorless callee.
        changed = True
        while changed:
            changed = False
            for plan in self.plans.values():
                for instr in plan.fa.fn.instructions():
                    if not isinstance(instr, Call):
                        continue
                    callee_plan = self._callee_plan(plan, instr)
                    if callee_plan is None or callee_plan.color_set_star:
                        continue
                    missing = plan.chunks - callee_plan.chunks
                    if missing:
                        callee_plan.chunks |= missing
                        changed = True
        for plan in self.plans.values():
            if not plan.chunks:
                plan.chunks.add(self.untrusted)
            plan.leader = (self.untrusted if self.untrusted in plan.chunks
                           else min(sorted(plan.chunks)))

    def _callee_plan(self, plan: SpecPlan, call: Call) -> Optional[SpecPlan]:
        callee = call.callee
        if not isinstance(callee, Function):
            return None
        if callee.is_declaration or callee.is_within or callee.is_ignore:
            return None
        arg_colors = tuple(plan.fa.color_of(a) for a in call.args)
        from repro.core.analysis import spec_name
        name = spec_name(callee.specialization_of or callee.name,
                         arg_colors)
        return self.plans.get(name)

    def _plan_call_sites(self, plan: SpecPlan) -> None:
        for instr in plan.fa.fn.instructions():
            if not isinstance(instr, Call):
                continue
            callee_plan = self._callee_plan(plan, instr)
            if callee_plan is None:
                continue
            # Target chunks of the callee: its own color set, or the
            # demand-replicated set for a pure-F callee.
            callee_cs = callee_plan.color_set_star or callee_plan.chunks
            if not callee_plan.color_set_star:
                # Pure-F callee: every chunk calls its own replica.
                info = CallSiteInfo(instr, callee_plan.fa.fn.name,
                                    direct=set(plan.chunks),
                                    spawns=set(), leader=plan.leader,
                                    sender=None, reply_to=None)
                plan.call_sites[instr] = info
                continue
            direct = plan.chunks & callee_cs
            # Chunks of the caller cover their colors by direct calls;
            # the leader spawns the rest (Fig 7: f.blue spawns g.red
            # and g.U).
            spawns = callee_cs - plan.chunks
            reply_to = None
            if not direct:
                # No caller chunk participates: the callee leader's
                # trampoline replies with the return value (Fig 7, c5).
                reply_to = callee_plan.leader if callee_plan.chunks else None
                if reply_to is None or reply_to not in callee_cs:
                    reply_to = min(sorted(callee_cs))
            sender = None
            if direct:
                sender = (self.untrusted if self.untrusted in direct
                          else min(sorted(direct)))
            elif reply_to is not None:
                sender = plan.leader  # leader receives the reply
            # A call inside a C-influenced block only exists in the C
            # chunk; spawning other chunks from there would replay the
            # branch decision in the open.  Only same-colored callees
            # are supported inside colored regions.
            region = plan.fa.block_colors.get(instr.parent, F)
            if region != F and (spawns or direct - {region}):
                raise PartitionError(
                    f"call to {callee_plan.fa.fn.name} inside a "
                    f"{region}-controlled block needs chunks "
                    f"{sorted((direct - {region}) | spawns)}; only "
                    f"{region}-only callees may be called under a "
                    f"colored condition")
            plan.call_sites[instr] = CallSiteInfo(
                instr, callee_plan.fa.fn.name, direct, spawns,
                plan.leader, sender, reply_to)

    # -- value availability and transfers ----------------------------------------------

    def _value_avail(self, plan: SpecPlan,
                     value: Value) -> Optional[Set[str]]:
        """Chunks where ``value`` is materialized (None = everywhere)."""
        if value in plan.avail:
            return plan.avail[value]
        result: Optional[Set[str]]
        if not isinstance(value, Instruction):
            # Constants, globals, arguments: arguments with a color are
            # only present in that chunk; F arguments reach every chunk
            # (direct calls and cont messages both carry them).
            from repro.ir.values import Argument
            if isinstance(value, Argument):
                color = plan.fa.color_of(value)
                result = None if color == F else {color}
            else:
                result = None
            plan.avail[value] = result
            return result
        color = self._home_color(plan, value) if isinstance(
            value, Instruction) else F
        if isinstance(value, Call) and value in plan.call_sites:
            info = plan.call_sites[value]
            ret_color = self.analysis.functions[
                info.callee_spec].return_color
            if ret_color != F:
                result = {ret_color}
            elif info.direct:
                result = set(info.direct)
            elif info.sender is not None:
                result = {info.sender}
            else:
                result = None
        elif color == F:
            result = None  # pure-F: replicated in every chunk
        else:
            result = {color}
        plan.avail[value] = result
        return result

    def _sender_of(self, plan: SpecPlan, value: Value) -> str:
        avail = self._value_avail(plan, value)
        assert avail, f"value {value.short()} has empty availability"
        if self.untrusted in avail:
            return self.untrusted
        return min(sorted(avail))

    def _plan_transfers(self, plan: SpecPlan) -> None:
        """Find every (value, chunk) pair where a chunk consumes an F
        value it cannot compute, and schedule a cont-message transfer
        from the chunk that has it (§7.3.2)."""
        for chunk in sorted(plan.chunks):
            for instr in plan.fa.fn.instructions():
                if not self._kept_in_chunk(plan, instr, chunk):
                    continue
                boundary_call = _is_ignore_call(instr)
                for op in self._transferable_operands(plan, instr, chunk):
                    avail = self._value_avail(plan, op)
                    if avail is None or chunk in avail:
                        continue
                    op_color = plan.fa.color_of(op)
                    if op_color != F and not (
                            boundary_call and is_untrusted(op_color)):
                        # Colored values never move chunks; untrusted
                        # values may reach an enclave only as arguments
                        # of a sanctioned ignore boundary call (§6.4 —
                        # the encrypt example's U output pointer).
                        continue
                    src = self._sender_of(plan, op)
                    if self.mode == HARDENED and \
                            not _is_ignore_result(op) and \
                            not boundary_call:
                        # §7.3.2: hardened mode refuses to feed an
                        # enclave a value computed elsewhere — except
                        # for classification/declassification results,
                        # which the developer sanctioned with the
                        # ignore annotation (§6.4).
                        raise PartitionError(
                            f"hardened mode cannot send the F value "
                            f"{op.short()} from {src} to {chunk} "
                            f"(paper §7.3.2); use relaxed mode or an "
                            f"ignore boundary function")
                    plan.recvs.add((op, chunk))
                    dests = plan.sends.setdefault(op, [])
                    if chunk not in dests:
                        dests.append(chunk)
        for dests in plan.sends.values():
            dests.sort()

    def _transferable_operands(self, plan: SpecPlan, instr: Instruction,
                               chunk: str):
        """Operands of a kept instruction that must hold real values in
        ``chunk`` (call arguments to foreign chunks are placeholders
        and excluded)."""
        if isinstance(instr, Call) and instr in plan.call_sites:
            info = plan.call_sites[instr]
            if chunk in info.direct:
                # Direct call: F and chunk-colored args are real.
                for arg in instr.args:
                    if plan.fa.color_of(arg) == F:
                        yield arg
            if chunk == info.leader and info.spawns:
                for arg in instr.args:
                    if plan.fa.color_of(arg) == F:
                        yield arg
            return
        if isinstance(instr, Ret):
            if instr.value is not None and \
                    plan.fa.color_of(instr.value) == F:
                yield instr.value
            return
        for op in instr.operands:
            if isinstance(op, (Instruction, Argument)):
                yield op

    def _kept_in_chunk(self, plan: SpecPlan, instr: Instruction,
                       chunk: str) -> bool:
        """Whether the chunk contains this instruction (before DCE)."""
        if isinstance(instr, (Jump, Ret)):
            return True
        if isinstance(instr, Branch):
            cond_color = plan.fa.color_of(instr.cond)
            return cond_color in (F, chunk)
        if isinstance(instr, Call) and instr in plan.call_sites:
            info = plan.call_sites[instr]
            return chunk in info.direct or chunk == info.leader or \
                (info.sender == chunk)
        color = self._home_color(plan, instr)
        return color in (F, chunk)

    def _home_color(self, plan: SpecPlan, instr: Instruction) -> str:
        """Placement color of a non-protocol instruction; ignore
        boundary calls with no enclave-colored argument run in the
        untrusted part (§6.4 classification)."""
        color = plan.fa.inst_colors.get(instr, F)
        if color == F and _is_ignore_call(instr):
            return self.untrusted
        return color

    def _is_visible_effect(self, plan: SpecPlan,
                           instr: Instruction) -> bool:
        """Visible effects (§7.3.3): stores to untrusted memory and
        external calls.  These are the instructions the sync-barrier
        token protocol orders."""
        if isinstance(instr, Store):
            return plan.fa.inst_colors.get(instr) == self.untrusted
        if isinstance(instr, Call):
            callee = instr.callee
            return (isinstance(callee, Function) and callee.is_declaration
                    and not callee.is_within and not callee.is_ignore
                    and not callee.name.startswith("__privagic"))
        return False

    def _barrier_home(self, plan: SpecPlan, instr: Instruction) -> str:
        """The chunk that hosts a visible effect and therefore waits
        for the barrier tokens (F-homed effects run untrusted)."""
        home = plan.fa.inst_colors.get(instr, F)
        if home == F:
            home = self.untrusted
        return home

    # Public aliases for the placement layer (repro.core.placement),
    # which reads protocol decisions off a shared planner.
    kept_in_chunk = _kept_in_chunk
    home_color = _home_color
    sender_of = _sender_of
    value_avail = _value_avail
    is_visible_effect = _is_visible_effect
    barrier_home = _barrier_home
    callee_plan = _callee_plan


class Partitioner:
    """Rewrites an analyzed module into per-color partitions.

    Materializes the IR the :class:`PartitionPlanner` decided on.  An
    optional ``placement`` object (a
    :class:`repro.core.placement.PlacementDecisions`) adjusts the
    materialization — today by exempting provably effect-free enclave
    chunks from sync-barrier token traffic.  With ``placement=None``
    (the default) the output is bit-identical to the historical
    monolithic partitioner.
    """

    def __init__(self, analysis: AnalysisResult,
                 sync_barriers: bool = True, dce: bool = True,
                 cache=None, planner: Optional[PartitionPlanner] = None,
                 placement=None):
        self.analysis = analysis
        self.planner = planner if planner is not None else \
            PartitionPlanner(analysis, cache=cache)
        self.cache = self.planner.cache
        self.mode = analysis.mode
        self.untrusted = analysis.untrusted
        self.sync_barriers = sync_barriers
        self.dce = dce
        self.placement = placement
        self.program = PartitionedProgram(analysis)
        self._runtime_decls: Dict[str, Function] = {
            name: Function(name, sig, attributes=["extern", "within"])
            for name, sig in _RUNTIME_SIGNATURES.items()}

    @property
    def plans(self) -> Dict[str, SpecPlan]:
        return self.planner.plans

    # -- planner delegation ------------------------------------------------------

    def _sender_of(self, plan: SpecPlan, value: Value) -> str:
        return self.planner._sender_of(plan, value)

    def _kept_in_chunk(self, plan: SpecPlan, instr: Instruction,
                       chunk: str) -> bool:
        return self.planner._kept_in_chunk(plan, instr, chunk)

    def _is_visible_effect(self, plan: SpecPlan,
                           instr: Instruction) -> bool:
        return self.planner._is_visible_effect(plan, instr)

    # == driver =================================================================

    def run(self) -> PartitionedProgram:
        self.planner.plan()
        for color in self._all_colors():
            self.program.modules[color] = Module(f"partition.{color}")
            self.program.modules[color].placement = (
                None if color == self.untrusted else color)
        self._place_globals()
        for plan in self.plans.values():
            for color in sorted(plan.chunks):
                self._build_chunk(plan, color)
        self._build_interfaces()
        self._declare_runtime()
        if self.dce:
            # Erase the uselessly replicated F instructions (§7.3.1).
            for module in self.program.modules.values():
                dead_code_elimination_chunks(module)
        return self.program

    def _all_colors(self) -> List[str]:
        colors = {self.untrusted}
        for fa in self.analysis.functions.values():
            colors |= {c for c in fa.color_set}
        colors = {c if c != U or self.mode == HARDENED else self.untrusted
                  for c in colors}
        return sorted(colors)

    # == globals (§7.1) ==============================================================

    def _place_globals(self) -> None:
        """Colored globals go to their enclave module; uncolored (S/U)
        globals go to the untrusted module.  Cross-module references
        resolve by identity at load time — the runtime's stand-in for
        the shared-block pointer of §7.1."""
        from repro.core.analysis import location_color
        for gv in self.analysis.module.globals.values():
            color = location_color(gv.value_type, self.mode)
            target = color if is_named(color) else self.untrusted
            module = self.program.modules[target]
            if gv.name not in module.globals:
                module.add_global(gv)

    # == chunk construction (§7.3.1) ==================================================

    def _build_chunk(self, plan: SpecPlan, chunk: str) -> None:
        fa = plan.fa
        spec = fa.fn
        name = chunk_name(spec.name, chunk)
        clone, value_map, block_map = clone_function(
            spec, name, return_maps=True)
        # The spec template is read-only here; when the cache is shared
        # with the analysis phase this tree was already computed for
        # Rule 4, and it is reused for every chunk of the same spec.
        pdt = self.cache.postdominators(spec)

        # 1. Prune control flow: branches on foreign-colored conditions
        # become jumps to their join point (Rule 4 payoff).
        removed_blocks = self._prune_branches(plan, chunk, spec, clone,
                                              value_map, block_map, pdt)

        # 2. Argument-value transfers (ignore-boundary arguments that
        # must reach another chunk) happen at function entry, before
        # any other instruction.
        self._materialize_argument_transfers(plan, chunk, spec, clone,
                                             value_map)

        # 3. Walk instructions in original order, rewriting.
        undef_cache: Dict[object, UndefValue] = {}
        for block in spec.blocks:
            new_block = block_map[block]
            if new_block in removed_blocks:
                continue
            for instr in list(block.instructions):
                mapped = value_map.get(instr)
                if mapped is None or mapped.parent is None:
                    continue
                self._rewrite_instruction(plan, chunk, instr, mapped,
                                          value_map, undef_cache)

        self._register_chunk(plan, chunk, clone)

    def _materialize_argument_transfers(self, plan: SpecPlan, chunk: str,
                                        spec: Function, clone: Function,
                                        value_map) -> None:
        entry = clone.entry_block
        position = 0
        for arg in spec.args:
            if arg in plan.sends and self._sender_of(plan, arg) == chunk:
                for dest in plan.sends[arg]:
                    send = Call(self._runtime_decls[SEND],
                                [_cstr(dest), value_map[arg]])
                    entry.insert(position, send)
                    position += 1
            if (arg, chunk) in plan.recvs:
                recv = Call(self._runtime_decls[RECV],
                            [_cstr(self._sender_of(plan, arg))],
                            name=f"recv.{arg.name}")
                entry.insert(position, recv)
                position += 1
                value_map[arg].replace_all_uses_with(recv)

    def _register_chunk(self, plan: SpecPlan, chunk: str,
                        clone: Function) -> None:
        module = self.program.modules[chunk]
        module.add_function(clone)
        self.program.chunk_colors[clone.name] = chunk
        self.program.chunk_args[clone.name] = plan.fa.arg_colors

    def _prune_branches(self, plan: SpecPlan, chunk: str, spec: Function,
                        clone: Function, value_map, block_map,
                        pdt: DominatorTree) -> Set[BasicBlock]:
        for block in spec.blocks:
            term = block.terminator
            if not isinstance(term, Branch):
                continue
            cond_color = plan.fa.color_of(term.cond)
            if cond_color in (F, chunk):
                continue
            join = pdt.immediate(block)
            new_branch = value_map[term]
            new_block = block_map[block]
            target = block_map[join] if join is not None else \
                block_map[term.then_block]
            new_branch.erase()
            jump = Jump(target)
            new_block.append(jump)
        # Drop now-unreachable blocks and fix phis.
        from repro.ir.cfg import reachable_blocks
        reachable = reachable_blocks(clone)
        removed: Set[BasicBlock] = set()
        for new_block in list(clone.blocks):
            if new_block in reachable:
                continue
            removed.add(new_block)
        for new_block in clone.blocks:
            if new_block in removed:
                continue
            preds = set(new_block.predecessors)
            for phi in list(new_block.phis):
                keep = [(v, b) for v, b in phi.incomings if b in preds]
                if len(keep) == len(phi.incomings):
                    continue
                if len(keep) == 1:
                    phi.replace_all_uses_with(keep[0][0])
                    phi.erase()
                elif len(keep) == 0:
                    phi.replace_all_uses_with(UndefValue(phi.type))
                    phi.erase()
                else:
                    phi.drop_operands()
                    phi.incoming_blocks = []
                    for v, b in keep:
                        phi.add_incoming(v, b)
        for dead in removed:
            for instr in list(dead.instructions):
                instr.replace_all_uses_with(UndefValue(instr.type))
                instr.erase()
            clone.blocks.remove(dead)
            dead.parent = None
        return removed

    # -- per-instruction rewriting ---------------------------------------------------------

    def _rewrite_instruction(self, plan: SpecPlan, chunk: str,
                             instr: Instruction, mapped: Instruction,
                             value_map, undef_cache) -> None:
        fa = plan.fa

        # (value, chunk) transfers: replace the computation by a recv.
        if (instr, chunk) in plan.recvs:
            src = self._sender_of(plan, instr)
            self._replace_with_recv(mapped, src)
            return

        # Synchronization barrier around a visible effect (§7.3.3):
        # the home chunk waits for tokens, every other chunk sends one
        # at the same program point — even though the effect itself
        # only exists in the home chunk.
        if self.sync_barriers and self._is_visible_effect(plan, instr):
            self._emit_barrier(plan, chunk, instr, mapped)

        if isinstance(instr, Call) and instr in plan.call_sites:
            self._rewrite_call(plan, chunk, instr, mapped, value_map)
            self._emit_sends(plan, chunk, instr, value_map)
            return

        if not self._kept_in_chunk(plan, instr, chunk):
            if not mapped.is_void:
                mapped.replace_all_uses_with(UndefValue(mapped.type))
            mapped.erase()
            return

        # Foreign colored operands surviving in kept instructions can
        # only be return values (other uses are colored and pruned);
        # replace them with placeholders.
        if isinstance(instr, Ret) and instr.value is not None:
            val_color = fa.color_of(instr.value)
            if val_color not in (F, chunk):
                mapped.set_operand(0, Constant(I64, 0))

        self._emit_sends(plan, chunk, instr, value_map)

    def _emit_sends(self, plan: SpecPlan, chunk: str, instr: Instruction,
                    value_map) -> None:
        if instr not in plan.sends:
            return
        if self._sender_of(plan, instr) != chunk:
            return
        mapped = value_map[instr]
        if mapped.parent is None:
            return
        block = mapped.parent
        index = block.instructions.index(mapped) + 1
        for dest in plan.sends[instr]:
            send = Call(self._runtime_decls[SEND],
                        [_cstr(dest), mapped])
            block.insert(index, send)
            index += 1

    def _replace_with_recv(self, mapped: Instruction, src: str) -> None:
        block = mapped.parent
        if isinstance(mapped, Phi):
            index = block.first_non_phi_index()
        else:
            index = block.instructions.index(mapped)
        recv = Call(self._runtime_decls[RECV], [_cstr(src)],
                    name=f"recv.{mapped.name or 'v'}")
        block.insert(index, recv)
        mapped.replace_all_uses_with(recv)
        mapped.erase()

    def _emit_barrier(self, plan: SpecPlan, chunk: str,
                      instr: Instruction, mapped: Instruction) -> None:
        """Before an instruction with a visible effect, wait for a
        token from every other chunk; the other chunks send theirs at
        the same program point (Fig 7: c3/c4 before printf).

        Chunks the placement policy exempted (provably effect-free, so
        their token cannot reorder any observable action) participate
        on neither side: the home chunk does not wait for them and
        they do not send.  Both sides filter by the same per-spec set,
        so send/recv pairs stay matched by construction."""
        home = self.planner._barrier_home(plan, instr)
        exempt = frozenset()
        if self.placement is not None:
            exempt = self.placement.barrier_exempt_chunks(
                plan.fa.fn.name)
        others = sorted(plan.chunks - {home} - exempt)
        if not others:
            return
        block = mapped.parent
        index = block.instructions.index(mapped)
        if chunk == home:
            for other in others:
                block.insert(index, Call(self._runtime_decls[TOKEN_RECV],
                                         [_cstr(other)]))
                index += 1
        elif chunk not in exempt:
            block.insert(index, Call(self._runtime_decls[TOKEN_SEND],
                                     [_cstr(home)]))

    # -- call rewriting (§7.3.2) ---------------------------------------------------------------

    def _rewrite_call(self, plan: SpecPlan, chunk: str, instr: Call,
                      mapped: Call, value_map) -> None:
        info = plan.call_sites[instr]
        fa = plan.fa
        block = mapped.parent
        index = block.instructions.index(mapped)

        # Leader spawns the callee chunks the caller cannot call.
        if chunk == info.leader and info.spawns:
            f_args = [a if self._spawned_needs(info, a)
                      else self._placeholder(a)
                      for a in instr.args if fa.color_of(a) == F]
            self._check_hardened_spawn(f_args, info)
            for dest in sorted(info.spawns):
                reply = info.reply_to if (
                    info.reply_to == dest and info.sender == chunk) else ""
                spawn_args: List[Value] = [
                    _cstr(chunk_name(info.callee_spec, dest)),
                    _cstr(reply)]
                spawn_args.extend(value_map.get(a, a) for a in f_args)
                block.insert(index, Call(self._runtime_decls[SPAWN],
                                         spawn_args))
                index += 1

        if chunk in info.direct:
            # Direct call to the matching callee chunk with real F/C
            # arguments and placeholders for foreign-colored ones.
            target = self.program.modules[chunk].functions.get(
                chunk_name(info.callee_spec, chunk))
            if target is None:
                # The chunk is built lazily; use a forward declaration
                # fixed up in _link_direct_calls.
                target = self._forward_chunk(info.callee_spec, chunk)
            mapped.set_operand(0, target)
            for i, arg in enumerate(instr.args):
                color = fa.color_of(arg)
                if color not in (F, chunk):
                    mapped.set_operand(i + 1, self._placeholder(arg))
            return

        if chunk == info.sender and info.reply_to is not None:
            # Leader without a direct call: wait for the trampoline's
            # reply carrying the return value (Fig 7: c5).
            recv = Call(self._runtime_decls[RECV],
                        [_cstr(info.reply_to)], name="reply")
            block.insert(index, recv)
            mapped.replace_all_uses_with(recv)
            mapped.erase()
            return

        # This chunk neither calls nor waits: the call disappears; any
        # use of the result was scheduled as a transfer recv.
        if not mapped.is_void:
            mapped.replace_all_uses_with(UndefValue(mapped.type))
        mapped.erase()

    def _spawned_needs(self, info: CallSiteInfo, arg: Value) -> bool:
        """Whether any spawned chunk of the callee consumes this F
        argument (unused ones become placeholders, which keeps the
        hardened no-computed-F-via-spawn rule from rejecting service
        patterns that never feed caller data to the enclave)."""
        callee_plan = self.plans.get(info.callee_spec)
        if callee_plan is None:
            return True
        index = None
        for i, call_arg in enumerate(info.call.args):
            if call_arg is arg:
                index = i
                break
        if index is None:
            return True
        formal = callee_plan.fa.fn.args[index]
        for user in formal.users:
            if not isinstance(user, Instruction) or user.parent is None:
                continue
            for dest in info.spawns:
                if self._kept_in_chunk(callee_plan, user, dest):
                    return True
        return False

    def _check_hardened_spawn(self, f_args: Sequence[Value],
                              info: CallSiteInfo) -> None:
        if self.mode != HARDENED:
            return
        for arg in f_args:
            if not isinstance(arg, Constant):
                raise PartitionError(
                    f"hardened mode cannot spawn chunk of "
                    f"{info.callee_spec} with the computed F argument "
                    f"{arg.short()} (paper §7.3.2)")

    _forward_decls: Dict[Tuple[str, str], Function]

    def _forward_chunk(self, callee_spec: str, chunk: str) -> Function:
        if not hasattr(self, "_fwd"):
            self._fwd = {}
        key = (callee_spec, chunk)
        if key not in self._fwd:
            spec_fn = self.analysis.module.get_function(callee_spec)
            self._fwd[key] = Function(chunk_name(callee_spec, chunk),
                                      spec_fn.ftype,
                                      [a.name for a in spec_fn.args],
                                      ["extern"])
        return self._fwd[key]

    @staticmethod
    def _placeholder(arg: Value) -> Value:
        if isinstance(arg.type, PointerType):
            return Constant(arg.type, 0)
        return Constant(arg.type.strip_color(), 0)

    # == interfaces (§7.3.4) ============================================================

    def _build_interfaces(self) -> None:
        module = self.program.modules[self.untrusted]
        for orig_name, spec in self.analysis.entry_specs.items():
            self._build_interface(module, orig_name, spec)
        for name in sorted(self.analysis.address_taken):
            if name in module.functions:
                continue
            spec = self._addr_taken_spec(name)
            if spec is not None:
                self._build_interface(module, name, spec)

    def _addr_taken_spec(self, name: str) -> Optional[str]:
        untrusted = U if self.mode == HARDENED else F
        fn = self.analysis.module.functions.get(name)
        if fn is None or fn.is_declaration:
            return None
        from repro.core.analysis import spec_name
        candidate = spec_name(name, tuple(untrusted for _ in fn.args))
        return candidate if candidate in self.plans else None

    def _build_interface(self, module: Module, public_name: str,
                         spec: str) -> None:
        plan = self.plans[spec]
        fa = plan.fa
        template = fa.fn
        iface = Function(public_name, template.ftype,
                         [a.name for a in template.args])
        module.add_function(iface)
        self.program.interfaces[public_name] = spec
        block = iface.add_block("entry")
        from repro.ir.builder import IRBuilder
        b = IRBuilder(block)

        enclave_chunks = sorted(plan.chunks - {self.untrusted})
        has_untrusted = self.untrusted in plan.chunks
        reply_to = None if has_untrusted else (
            min(enclave_chunks) if enclave_chunks else None)
        f_args = [arg for arg, color in zip(iface.args, fa.arg_colors)
                  if color == F]
        for dest in enclave_chunks:
            reply = dest if (reply_to == dest) else ""
            b.call(self._runtime_decls[SPAWN],
                   [_cstr(chunk_name(spec, dest)), _cstr(reply),
                    *f_args])
        if has_untrusted:
            target = self.program.modules[self.untrusted].functions.get(
                chunk_name(spec, self.untrusted)) or \
                self._forward_chunk(spec, self.untrusted)
            result = b.call(target, list(iface.args))
        elif reply_to is not None:
            result = b.call(self._runtime_decls[RECV], [_cstr(reply_to)],
                            "reply")
        else:
            result = None
        if iface.ftype.ret == VOID or result is None or result.is_void:
            b.ret()
        else:
            b.ret(result)

    # == runtime declarations ==============================================================

    def _declare_runtime(self) -> None:
        for module in self.program.modules.values():
            for name, fn in self._runtime_decls.items():
                if name not in module.functions:
                    module.add_function(
                        Function(name, fn.ftype,
                                 attributes=["extern", "within"]))


def _is_ignore_result(value: Value) -> bool:
    return (isinstance(value, Call)
            and isinstance(value.callee, Function)
            and value.callee.is_ignore)


def _is_ignore_call(instr: Instruction) -> bool:
    return _is_ignore_result(instr)


def dead_code_elimination_chunks(module: Module) -> int:
    """DCE variant for partitioned modules: calls to ``within``
    mini-libc functions whose results are unused are removable — this
    is what erases uselessly replicated F allocations (paper §7.3.1)."""
    removable = {"malloc", "hash64", "strlen", "strcmp",
                 "__privagic_alloc"}
    erased = 0
    changed = True
    while changed:
        changed = False
        for fn in module.defined_functions():
            for block in fn.blocks:
                for instr in list(block.instructions):
                    if not isinstance(instr, Call):
                        continue
                    callee = instr.callee
                    if not isinstance(callee, Function) or \
                            callee.name not in removable:
                        continue
                    if not any(u is not instr for u in instr.users):
                        instr.erase()
                        erased += 1
                        changed = True
    erased_dce = dead_code_elimination(module)
    return erased + erased_dce


def partition(analysis: AnalysisResult, sync_barriers: bool = True,
              dce: bool = True, cache=None, planner=None,
              placement=None) -> PartitionedProgram:
    """Partition an analyzed module (paper §7).

    ``planner`` reuses an already-planned :class:`PartitionPlanner`
    (from the ``optimize-placement`` pass); ``placement`` applies a
    :class:`repro.core.placement.PlacementDecisions` during
    materialization.  Both default to the historical behavior.
    """
    analysis.check()
    return Partitioner(analysis, sync_barriers, dce, cache=cache,
                       planner=planner, placement=placement).run()
