"""The secure type system of the paper (Table 3) and its inference.

The analysis assigns a color to every SSA register, every instruction
and every basic block of the program, and reports an error whenever a
typing rule is violated.  It is organised exactly like the paper:

* **Initial colors** (§5.3 / Table 2): explicit annotations come from
  the IR types; uncolored memory locations are U (hardened) or S
  (relaxed); uncolored registers are F.

* **Typing rules** (§6.1 / Table 3):

  =====  ==========================  ==============================
  Rule   instruction                 constraint
  =====  ==========================  ==============================
  1      ``r = load p``              ``*p ~ p`` and (``*p != S`` ⇒ ``r ← *p``)
  2      ``r = op(x1..xn)``          ``∀i, r ← xi``
  3      ``store r, p``              ``*p ~ p`` and ``r ~ *p``
  4      block coloring              ``ins ∈ B ⇒ out(ins) ← B̄``
  =====  ==========================  ==============================

  where ``a ~ b`` errors unless a == b or either is F, and ``x ← ȳ``
  additionally turns an F x into ȳ.

* **Function calls** (§6.2, §6.3, §6.4): direct calls to local
  functions create *specialized* versions stamped with the caller's
  argument colors; external calls require U-compatible arguments;
  ``within`` functions execute in the enclave of their colored
  argument; ``ignore`` functions do the same but skip incompatible
  arguments (declassification); indirect calls behave like external
  calls.

* **Stabilizing algorithm** (§5.2): whole-module passes repeat until
  no pass infers a new color.

The analysis also computes, for the partitioner:

* the *home* of every instruction — a specific color, or
  ``REPLICATED`` for pure-F computations that every chunk replays
  (§7.3.1), and
* the *color set* of every specialized function (§7.3.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SecureTypeError
from repro.core.colors import (
    F,
    HARDENED,
    RELAXED,
    S,
    U,
    compatible,
    is_free,
    is_named,
    is_untrusted,
    untrusted_color,
)
from repro.ir.cfg import blocks_influenced_by
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Cmp,
    GEP,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import BasicBlock, Function, Module, clone_function
from repro.ir.printer import print_instruction
from repro.ir.types import (
    ArrayType,
    FunctionType,
    IRType,
    PointerType,
    StructType,
)
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value
from repro.ir.passes import mem2reg

#: Pseudo-home of pure-F instructions: present in every chunk (§7.3.1).
REPLICATED = "*"


def location_color(value_type: IRType, mode: str,
                   _seen: Optional[frozenset] = None) -> str:
    """The color of a memory location of the given type (§5.3).

    Pointers derive their color from their pointee (the paper's fourth
    confidentiality rule); a struct is uniformly colored C only when
    every field is C — otherwise the struct shell itself lives in
    unsafe memory (§7.2) and only its colored fields are protected.
    Self-referential structs (``struct entry { ...; struct entry*
    next; }``) treat the recursive reference as agreeing with the
    enclosing struct's color.
    """
    t = value_type
    while isinstance(t, PointerType):
        t = t.pointee
    if isinstance(t, ArrayType):
        return location_color(t.element, mode, _seen)
    if isinstance(t, StructType):
        uniform = uniform_struct_color(t, mode, _seen)
        return uniform if uniform is not None else untrusted_color(mode)
    if isinstance(t, FunctionType):
        return F  # code pointers are free values
    color = t.color if t.color is not None else untrusted_color(mode)
    # An explicit color(U) annotation means "the unsafe partition";
    # in relaxed mode that partition's color is S (Table 2).
    if color == U and mode == RELAXED:
        return S
    return color


def uniform_struct_color(struct: StructType, mode: str,
                         _seen: Optional[frozenset] = None
                         ) -> Optional[str]:
    """The single color of a fully colored struct, or None."""
    seen = _seen or frozenset()
    if struct.name in seen:
        return None  # recursive reference: resolved by the caller
    seen = seen | {struct.name}
    colors: Set[str] = set()
    recursive_fields = 0
    for field in struct.fields:
        if _refers_to(field.type, seen):
            recursive_fields += 1
            continue
        colors.add(location_color(field.type, mode, seen))
        if len(colors) > 1:
            return None
    if len(colors) == 1:
        color = colors.pop()
        return color if is_named(color) else None
    return None


def _refers_to(field_type: IRType, seen: frozenset) -> bool:
    t = field_type
    while isinstance(t, (PointerType, ArrayType)):
        t = t.pointee if isinstance(t, PointerType) else t.element
    return isinstance(t, StructType) and t.name in seen


def spec_name(base: str, arg_colors: Sequence[str]) -> str:
    if not arg_colors:
        return f"{base}$"
    return f"{base}${'.'.join(arg_colors)}"


class FunctionAnalysis:
    """Per-specialization analysis state."""

    def __init__(self, fn: Function, arg_colors: Tuple[str, ...],
                 mode: str = HARDENED):
        self.fn = fn
        self.arg_colors = arg_colors
        self.mode = mode
        #: color of each register (Argument / Instruction)
        self.reg_colors: Dict[Value, str] = {}
        #: color of each instruction (placement constraint)
        self.inst_colors: Dict[Instruction, str] = {}
        #: Rule 4 block colors
        self.block_colors: Dict[BasicBlock, str] = {}
        self.return_color: str = F
        #: colors used by the function, F excluded (§7.3.1); receiving
        #: a colored argument counts (paper: colorset(f$blue) = {blue}
        #: "because f receives a blue argument").
        self.color_set: Set[str] = set()
        for arg, color in zip(fn.args, arg_colors):
            self.reg_colors[arg] = color
            if color != F:
                self.color_set.add(color)

    def color_of(self, value: Value) -> str:
        if isinstance(value, (Constant, UndefValue)):
            return F
        if isinstance(value, Function):
            return F
        if isinstance(value, GlobalVariable):
            # The global *is* a pointer to its storage; rule 4 gives it
            # the storage's color.
            return location_color(value.value_type, self.mode)
        return self.reg_colors.get(value, F)

    def __repr__(self) -> str:
        return f"<FunctionAnalysis {self.fn.name} colors={self.color_set}>"


class AnalysisResult:
    """The outcome of :func:`analyze_module`.

    Attributes
    ----------
    module:
        The analyzed module.  Specialized functions (``f$blue.U``)
        have been added; original bodies are kept as templates.
    functions:
        Mapping from specialized function name to its
        :class:`FunctionAnalysis`.
    entry_specs:
        Mapping from original entry-point name to its specialized
        version's name.
    errors:
        Every :class:`SecureTypeError` found.  :meth:`check` raises
        the first one.
    """

    def __init__(self, module: Module, mode: str):
        self.module = module
        self.mode = mode
        self.functions: Dict[str, FunctionAnalysis] = {}
        self.entry_specs: Dict[str, str] = {}
        self.errors: List[SecureTypeError] = []
        self.passes = 0
        #: names of functions whose address is taken (indirect-call
        #: targets); their U-specialization is forced (§6.3).
        self.address_taken: Set[str] = set()

    @property
    def untrusted(self) -> str:
        return untrusted_color(self.mode)

    def check(self) -> "AnalysisResult":
        if self.errors:
            raise self.errors[0]
        return self

    def analysis_of(self, fn: Function) -> "FunctionAnalysis":
        return self.functions[fn.name]

    def all_colors(self) -> Set[str]:
        colors: Set[str] = {self.untrusted}
        for fa in self.functions.values():
            colors |= fa.color_set
        return colors

    def named_colors(self) -> Set[str]:
        return {c for c in self.all_colors() if is_named(c)}

    def instruction_home(self, fa: FunctionAnalysis,
                         instr: Instruction) -> str:
        """Where the partitioner generates this instruction: a color,
        or REPLICATED for pure-F computation (§7.3.1)."""
        color = fa.inst_colors.get(instr, F)
        if color == F:
            return REPLICATED
        return color


class _Analyzer:
    """Runs the stabilizing algorithm over one module."""

    def __init__(self, module: Module, mode: str, cache=None):
        if mode not in (HARDENED, RELAXED):
            raise ValueError(f"unknown mode {mode!r}")
        self.module = module
        self.mode = mode
        if cache is None:
            from repro.pipeline.analyses import AnalysisCache
            cache = AnalysisCache()
        self.cache = cache
        self.result = AnalysisResult(module, mode)
        self.changed = False
        self._error_keys: Set[tuple] = set()

    # -- error collection -----------------------------------------------------

    def error(self, rule: str, message: str,
              instr: Optional[Instruction] = None,
              colors: tuple = ()) -> None:
        text = print_instruction(instr) if instr is not None else ""
        key = (rule, message, text)
        if key in self._error_keys:
            return
        self._error_keys.add(key)
        loc = getattr(instr, "loc", None)
        self.result.errors.append(
            SecureTypeError(rule, message, text, colors, loc=loc))

    # -- color primitives -------------------------------------------------------

    def loc_color(self, value_type: IRType) -> str:
        return location_color(value_type, self.mode)

    def assign(self, fa: FunctionAnalysis, value: Value, color: str,
               rule: str, instr: Optional[Instruction]) -> str:
        """``value ← color`` (Table 3): check compatibility and turn an
        F register into ``color``; returns the resulting color."""
        current = fa.color_of(value)
        if current == color or color == F:
            return current
        if current == F:
            if isinstance(value, (Constant, UndefValue, Function,
                                  GlobalVariable)):
                return current  # constants stay free
            fa.reg_colors[value] = color
            self.changed = True
            return color
        self.error(rule, f"incompatible colors {current} and {color}",
                   instr, (current, color))
        return current

    def require_compatible(self, a: str, b: str, rule: str,
                           instr: Instruction) -> None:
        if not compatible(a, b):
            self.error(rule, f"incompatible colors {a} and {b}", instr,
                       (a, b))

    def set_inst_color(self, fa: FunctionAnalysis, instr: Instruction,
                       color: str) -> None:
        current = fa.inst_colors.get(instr, F)
        if color == F or current == color:
            return
        if current == F:
            fa.inst_colors[instr] = color
            if color != F:
                fa.color_set.add(color)
            self.changed = True
        elif current != color:
            self.error("placement",
                       f"instruction constrained to both {current} "
                       f"and {color}", instr, (current, color))

    # -- specialization (§6.2) -----------------------------------------------------

    def get_specialization(self, fn: Function,
                           arg_colors: Tuple[str, ...]) -> FunctionAnalysis:
        name = spec_name(fn.name, arg_colors)
        fa = self.result.functions.get(name)
        if fa is not None:
            return fa
        types = [t.strip_color() if not isinstance(t, PointerType) else t
                 for t in fn.ftype.params]
        spec = clone_function(fn, name, types)
        spec.specialization_of = fn.name
        spec.arg_colors = arg_colors
        self.module.add_function(spec)
        fa = FunctionAnalysis(spec, arg_colors, self.mode)
        self.result.functions[name] = fa
        self.changed = True
        return fa

    def entry_arg_colors(self, fn: Function) -> Tuple[str, ...]:
        """Entry-point arguments are U in hardened mode and F in
        relaxed mode (§6.2).  A pointer argument whose pointee type is
        explicitly colored keeps its declared color (the developer's
        annotation is the ground truth)."""
        default = U if self.mode == HARDENED else F
        colors = []
        for param in fn.ftype.params:
            declared = self._declared_arg_color(param)
            colors.append(declared if declared is not None else default)
        return tuple(colors)

    def _declared_arg_color(self, param: IRType) -> Optional[str]:
        t = param
        while isinstance(t, PointerType):
            t = t.pointee
        if isinstance(t, StructType):
            return uniform_struct_color(t, self.mode)
        return t.color

    # -- the stabilizing algorithm (§5.2) ----------------------------------------------

    def run(self, entries: Optional[Sequence[str]] = None,
            max_passes: int = 60) -> AnalysisResult:
        mem2reg(self.module, cache=self.cache)
        entry_fns = ([self.module.get_function(n) for n in entries]
                     if entries else self.module.entry_points())
        templates = {f.name for f in self.module.functions.values()}

        for fn in entry_fns:
            fa = self.get_specialization(fn, self.entry_arg_colors(fn))
            self.result.entry_specs[fn.name] = fa.fn.name

        for _ in range(max_passes):
            self.result.passes += 1
            self.changed = False
            # Iterate over a snapshot: specializations discovered in
            # this pass are analyzed in the next one.
            for name in list(self.result.functions):
                self.analyze_function(self.result.functions[name])
            if not self.changed:
                break
        else:
            self.error("stabilize",
                       f"analysis did not stabilize in {max_passes} passes")
        # Force an untrusted specialization of every address-taken
        # function so indirect calls have a target (§6.3: loading a
        # function pointer loads the U-specialized version).
        for fn in list(self.module.functions.values()):
            if "address-taken" in fn.attributes:
                self.result.address_taken.add(fn.name)
        for name in sorted(self.result.address_taken):
            fn = self.module.functions.get(name)
            if fn is not None and not fn.is_declaration and \
                    name in templates and fn.specialization_of is None:
                untrusted = U if self.mode == HARDENED else F
                fa = self.get_specialization(
                    fn, tuple(untrusted for _ in fn.args))
                for _ in range(3):
                    self.analyze_function(fa)
        return self.result

    # -- per-function analysis ------------------------------------------------------------

    def analyze_function(self, fa: FunctionAnalysis) -> None:
        fn = fa.fn
        if fn.is_declaration:
            return
        # Local fixpoint: loops feed colors backwards through phis.
        for _ in range(30):
            before = self.changed
            self.changed = False
            self._compute_block_colors(fa)
            for block in fn.blocks:
                for instr in list(block.instructions):
                    self.visit(fa, instr)
            local_changed = self.changed
            self.changed = before or local_changed
            if not local_changed:
                break

    def _compute_block_colors(self, fa: FunctionAnalysis) -> None:
        """Rule 4 (§6.1.1): blocks control-dependent on a conditional
        branch with a C condition take the color C; the joining point
        does not."""
        fn = fa.fn
        if not fn.blocks:
            return
        # The analysis never mutates the CFG, so the cached tree is
        # valid across every stabilization pass — this was the hottest
        # rebuild in the whole compile path (one tree per function per
        # local-fixpoint iteration).
        pdt = self.cache.postdominators(fn)
        for block in fn.blocks:
            term = block.terminator
            if not isinstance(term, Branch):
                continue
            cond_color = fa.color_of(term.cond)
            if not is_named(cond_color):
                # Only enclave colors propagate: branching on untrusted
                # data is the baseline service pattern (the request
                # loop), and the attacker already controls it — the
                # §8 spawn-sequence discussion, not a leak.
                continue
            influenced = blocks_influenced_by(block, pdt)
            for b in influenced:
                current = fa.block_colors.get(b, F)
                if current == F:
                    fa.block_colors[b] = cond_color
                    self.changed = True
                elif current != cond_color:
                    self.error(
                        "block-color",
                        f"block {b.name} influenced by branches of "
                        f"colors {current} and {cond_color}",
                        term, (current, cond_color))

    # -- instruction rules -------------------------------------------------------------------

    def visit(self, fa: FunctionAnalysis, instr: Instruction) -> None:
        block_color = fa.block_colors.get(instr.parent, F)

        if isinstance(instr, Load):
            self._visit_load(fa, instr)
        elif isinstance(instr, Store):
            self._visit_store(fa, instr)
        elif isinstance(instr, Call):
            self._visit_call(fa, instr)
        elif isinstance(instr, Alloca):
            self._visit_alloca(fa, instr)
        elif isinstance(instr, GEP):
            self._visit_gep(fa, instr)
        elif isinstance(instr, Cast):
            self._visit_cast(fa, instr)
        elif isinstance(instr, (BinOp, Cmp, Select, Phi)):
            self._visit_operation(fa, instr)
        elif isinstance(instr, Branch):
            cond_color = fa.color_of(instr.cond)
            self.set_inst_color(fa, instr, cond_color)
        elif isinstance(instr, Ret):
            self._visit_ret(fa, instr)
        elif isinstance(instr, (Jump, Unreachable)):
            pass
        else:
            self.error("unknown", f"no rule for {instr.opcode}", instr)

        # Rule 4: every instruction in a colored block takes the block
        # color; its output register must be compatible with it.
        if block_color != F:
            if not instr.is_void:
                self.assign(fa, instr, block_color, "block-color", instr)
            # A store inside a colored block writes to memory the
            # attacker may observe; its target must carry the block
            # color (Figure 4: `x = 1` under `if (b == 42)` reveals b).
            if isinstance(instr, Store):
                target = self.loc_color(instr.ptr.type.pointee)
                if not compatible(target, block_color):
                    self.error(
                        "block-color",
                        f"store to {target} memory inside a "
                        f"{block_color}-controlled block leaks the "
                        f"branch condition", instr,
                        (target, block_color))
                    return
            if isinstance(instr, Call) and fa.inst_colors.get(
                    instr, F) not in (F, block_color):
                self.error(
                    "block-color",
                    f"{fa.inst_colors[instr]} call inside a "
                    f"{block_color}-controlled block leaks the branch "
                    f"condition", instr,
                    (fa.inst_colors[instr], block_color))
                return
            self.set_inst_color(fa, instr, block_color)

    def _visit_load(self, fa: FunctionAnalysis, instr: Load) -> None:
        """Rule 1: ``*p ~ p``; if ``*p != S`` the result takes the
        color of the location; a load from S yields F (Table 2)."""
        mem = self.loc_color(instr.ptr.type.pointee)
        ptr = fa.color_of(instr.ptr)
        self.require_compatible(mem, ptr, "load", instr)
        # The pointer register itself becomes the location's color
        # (rule 4 of §4: a pointer to C memory is C).
        self.assign(fa, instr.ptr, mem, "load", instr)
        if mem != S:
            self.assign(fa, instr, mem, "load", instr)
        self.set_inst_color(fa, instr, mem)

    def _visit_store(self, fa: FunctionAnalysis, instr: Store) -> None:
        """Rule 3: ``*p ~ p`` and ``r ~ *p``; the store is generated in
        the enclave of the location (integrity, §4)."""
        mem = self.loc_color(instr.ptr.type.pointee)
        ptr = fa.color_of(instr.ptr)
        value = fa.color_of(instr.value)
        self.require_compatible(mem, ptr, "store", instr)
        self.assign(fa, instr.ptr, mem, "store", instr)
        if not compatible(value, mem):
            self.error(
                "store",
                f"storing a {value} value into {mem} memory leaks it",
                instr, (value, mem))
        self.set_inst_color(fa, instr, mem)

    def _visit_operation(self, fa: FunctionAnalysis,
                         instr: Instruction) -> None:
        """Rule 2: ``∀i, r ← xi`` — the output takes the color of every
        input; two distinct non-F inputs are an error (also the Iago
        rule: a C instruction cannot consume a U input)."""
        for op in instr.operands:
            color = fa.color_of(op)
            self.assign(fa, instr, color, "op", instr)
        if isinstance(instr, Phi):
            # A phi merging values arriving from C-influenced blocks
            # reveals which path ran, i.e. the branch condition:
            # `x = b == 42 ? 5 : 7` leaks b exactly like Figure 4.
            for _, block in instr.incomings:
                edge_color = fa.block_colors.get(block, F)
                if edge_color != F:
                    self.assign(fa, instr, edge_color, "block-color",
                                instr)
        self.set_inst_color(fa, instr, fa.color_of(instr))

    def _visit_gep(self, fa: FunctionAnalysis, instr: GEP) -> None:
        """Address computation.  The result pointer takes the color of
        the addressed location (explicit field colors win); the base
        pointer must be compatible with the struct shell it addresses.
        """
        result_color = self.loc_color(instr.type.pointee)
        base_color = fa.color_of(instr.ptr)
        shell_color = self.loc_color(instr.ptr.type.pointee)
        self.require_compatible(base_color, shell_color, "gep", instr)
        for idx in instr.indices:
            self.assign(fa, instr, fa.color_of(idx), "gep", instr)
        # Rule 2 on the base pointer: in hardened mode a multi-color
        # struct shell is U, so addressing a colored field from it is
        # rejected — the §8 restriction falls out of the type system.
        self.assign(fa, instr, base_color, "gep", instr)
        self.assign(fa, instr, result_color, "gep", instr)
        self.set_inst_color(fa, instr, fa.color_of(instr))

    def _visit_cast(self, fa: FunctionAnalysis, instr: Cast) -> None:
        """Casts preserve colors (rule 4 of §4): a pointer cast cannot
        change the color of the pointed memory."""
        operand_color = fa.color_of(instr.value)
        if isinstance(instr.to_type, PointerType) and \
                isinstance(instr.value.type, PointerType):
            from_color = self.loc_color(instr.value.type.pointee)
            to_color = self.loc_color(instr.to_type.pointee)
            if is_named(to_color):
                # Recoloring a pointer between two enclaves is the
                # forbidden cast; stamping a fresh (F) pointer — the
                # malloc-and-cast allocation idiom — is fine.
                if is_named(from_color) and from_color != to_color:
                    self.error("cast",
                               f"pointer cast changes color "
                               f"{from_color} -> {to_color}", instr,
                               (from_color, to_color))
                self.assign(fa, instr, operand_color, "cast", instr)
                self.assign(fa, instr, to_color, "cast", instr)
            else:
                # Cast to an opaque/unsafe pointee (the i8* of the
                # mini-libc signatures): the register keeps the color
                # of what it points to — the annotation on the static
                # type is lost, the secure color is not.
                self.assign(fa, instr, operand_color, "cast", instr)
                if is_named(from_color):
                    self.assign(fa, instr, from_color, "cast", instr)
        else:
            self.assign(fa, instr, operand_color, "cast", instr)
        self.set_inst_color(fa, instr, fa.color_of(instr))

    @staticmethod
    def _multicolor_target(t: IRType) -> bool:
        while isinstance(t, PointerType):
            t = t.pointee
        return isinstance(t, StructType) and t.is_multicolor

    def _visit_alloca(self, fa: FunctionAnalysis, instr: Alloca) -> None:
        color = self.loc_color(instr.allocated_type)
        self.assign(fa, instr, color, "alloca", instr)
        self.set_inst_color(fa, instr, color)

    def _visit_ret(self, fa: FunctionAnalysis, instr: Ret) -> None:
        if instr.value is not None:
            color = fa.color_of(instr.value)
            if fa.return_color == F and color != F:
                fa.return_color = color
                self.changed = True
            elif fa.return_color != F and color != F and \
                    color != fa.return_color:
                self.error("ret", f"function returns both "
                                  f"{fa.return_color} and {color} values",
                           instr, (fa.return_color, color))

    # -- calls (§6.2 / §6.3 / §6.4) ----------------------------------------------------------------

    def _visit_call(self, fa: FunctionAnalysis, instr: Call) -> None:
        # Record address-taken functions (operands other than the
        # callee slot, plus any use as a stored value elsewhere is
        # handled by _scan_address_taken during set-up).
        for arg in instr.args:
            if isinstance(arg, Function):
                self.result.address_taken.add(arg.name)

        callee = instr.callee
        if not isinstance(callee, Function):
            self._visit_untrusted_call(fa, instr, kind="indirect")
            return
        if callee.is_within:
            self._visit_within_call(fa, instr, callee, ignore=False)
            return
        if callee.is_ignore:
            self._visit_within_call(fa, instr, callee, ignore=True)
            return
        if callee.is_declaration:
            self._visit_untrusted_call(fa, instr, kind="external")
            return
        self._visit_local_call(fa, instr, callee)

    def _visit_local_call(self, fa: FunctionAnalysis, instr: Call,
                          callee: Function) -> None:
        """Direct call to a local function: specialize it with the
        actual argument colors (§6.2)."""
        if callee.specialization_of is not None:
            template_name = callee.specialization_of
            template = self.module.get_function(template_name)
        else:
            template = callee
        arg_colors = tuple(fa.color_of(a) for a in instr.args)
        callee_fa = self.get_specialization(template, arg_colors)
        if callee_fa.return_color != F:
            self.assign(fa, instr, callee_fa.return_color, "call", instr)
        # The call itself spans chunks; the partitioner places it per
        # chunk, so it carries no single placement color unless the
        # return pins it.
        self.set_inst_color(fa, instr, fa.color_of(instr))

    def _visit_untrusted_call(self, fa: FunctionAnalysis, instr: Call,
                              kind: str) -> None:
        """External and indirect calls execute in the untrusted part;
        every argument must be compatible with U/S (§6.3)."""
        untrusted = self.result.untrusted
        for arg in instr.args:
            color = fa.color_of(arg)
            if not compatible(color, untrusted):
                self.error(
                    "external-arg" if kind == "external" else
                    "indirect-arg",
                    f"{kind} call leaks a {color} argument to the "
                    f"untrusted part", instr, (color, untrusted))
        # In hardened mode the result comes from U code: it is U (Iago
        # protection).  In relaxed mode it is F, like a load from S.
        if self.mode == HARDENED:
            self.assign(fa, instr, U, "call", instr)
        self.set_inst_color(fa, instr, untrusted)

    def _visit_within_call(self, fa: FunctionAnalysis, instr: Call,
                           callee: Function, ignore: bool) -> None:
        """``within`` functions (mini-libc) run inside the caller's
        enclave: if any argument is C, the call executes in C and every
        other argument (and pointed-to value) must be compatible with C
        — unless the function is ``ignore``, in which case incompatible
        arguments are skipped (declassification, §6.4)."""
        arg_colors = [fa.color_of(arg) for arg in instr.args]
        # "As soon as one of the arguments is C, the call is executed
        # in the enclave C" (§6.3/§6.4) — an enclave color wins over
        # the untrusted U/S of the remaining arguments.
        call_color = F
        for color in arg_colors:
            if is_named(color):
                call_color = color
                break
        else:
            for color in arg_colors:
                if color != F:
                    call_color = color
                    break
        if not ignore:
            for color in arg_colors:
                if color != F and color != call_color:
                    self.error("within-arg",
                               f"within call mixes {call_color} and "
                               f"{color} arguments", instr,
                               (call_color, color))
        if not ignore:
            for arg, color in zip(instr.args, arg_colors):
                # Pointer arguments: a pointee with a *different named*
                # color would let one enclave read or corrupt another
                # (§6.3).  Pointees in unsafe memory are allowed — that
                # is how inputs reach an enclave in the paper's own
                # Figure 1 (strncpy from an uncolored char*); leaking
                # *out* through an unsafe pointer requires the explicit
                # ignore/declassify annotation (§6.4).
                if isinstance(arg.type, PointerType):
                    pointee = self.loc_color(arg.type.pointee)
                    if call_color != F and is_named(pointee) and \
                            pointee != call_color:
                        self.error(
                            "within-ptr",
                            f"within call in {call_color} passes a "
                            f"pointer to {pointee} memory", instr,
                            (pointee, call_color))
        if ignore:
            # Classification/declassification: the result is free
            # (§6.4).  The call runs at the boundary: inside the
            # enclave one of its arguments names, or — when no argument
            # is enclave-colored — in the untrusted part (the
            # partitioner homes F-colored ignore calls there).
            self.set_inst_color(fa, instr, call_color)
            return
        # The result carries the call color (third confidentiality
        # rule: outputs computed from colored inputs are colored).
        if call_color != F:
            self.assign(fa, instr, call_color, "within", instr)
        self.set_inst_color(fa, instr, call_color)


def analyze_module(module: Module, mode: str = HARDENED,
                   entries: Optional[Sequence[str]] = None,
                   check: bool = True, cache=None) -> AnalysisResult:
    """Run the full Privagic type analysis on ``module``.

    The module is mutated: ``mem2reg`` is applied and specialized
    function versions are added.  With ``check=True`` (default) the
    first :class:`SecureTypeError` is raised; with ``check=False`` the
    errors are collected on the result for inspection.  ``cache``
    optionally shares an :class:`~repro.pipeline.analyses.AnalysisCache`
    with the surrounding pipeline.
    """
    _scan_address_taken(module)
    result = _Analyzer(module, mode, cache=cache).run(entries)
    if check:
        result.check()
    return result


def _scan_address_taken(module: Module) -> None:
    """Mark functions whose address escapes (stored, passed, compared)
    so the analysis forces their untrusted specialization (§6.3)."""
    for fn in module.defined_functions():
        for instr in fn.instructions():
            for op in instr.operands:
                if isinstance(op, Function):
                    if isinstance(instr, Call) and op is instr.callee:
                        continue
                    op.attributes.add("address-taken")
