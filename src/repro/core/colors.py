"""Compatibility shim: the color system now lives in
:mod:`repro.secval.model`, the frontend-neutral secure-value layer.

Every symbol is re-exported so existing ``repro.core.colors`` imports
keep working; new code (and every frontend) should import the model
from :mod:`repro.secval` directly.
"""

from repro.secval.model import (
    F,
    HARDENED,
    RELAXED,
    S,
    U,
    compatible,
    is_free,
    is_named,
    is_untrusted,
    join,
    named_colors,
    untrusted_color,
    validate_color_name,
)

__all__ = [
    "F", "U", "S", "HARDENED", "RELAXED",
    "is_free", "is_named", "is_untrusted", "untrusted_color",
    "compatible", "join", "validate_color_name", "named_colors",
]
