"""The Privagic compiler driver (paper Figure 5).

Pipeline (all stages are named passes scheduled by the
:class:`~repro.pipeline.manager.PassManager`)::

    MiniC source ──(frontend)──► IR module with secure types
        │
        ├─ mem2reg                         (§5.1)
        ├─ simplify-cfg / constfold / dce  (pre-analysis cleanup)
        ├─ multi-color struct rewriting    (§7.2, relaxed mode only)
        ├─ secure type analysis            (§6, stabilizing §5.2)
        └─ partitioning                    (§7)
                 │
                 ▼
    one module per color + interface functions + runtime metadata
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.analysis import AnalysisResult
from repro.core.colors import HARDENED, RELAXED
from repro.core.partition import PartitionedProgram
from repro.ir.module import Module
from repro.pipeline import CompilationContext, PassManager


class PrivagicCompiler:
    """Compiles an IR module (or MiniC source) into a partitioned
    program for the simulated SGX machine.

    Parameters
    ----------
    mode:
        ``"hardened"`` enforces confidentiality, integrity and Iago
        protection; ``"relaxed"`` drops the Iago protection but allows
        multi-color structures and F-value messaging (paper §5).
    sync_barriers:
        Generate the §7.3.3 synchronization barriers around visible
        effects (on by default).
    passes:
        Pipeline override (comma-separated names or pass instances);
        defaults to the Figure-5 pipeline
        (:data:`repro.pipeline.DEFAULT_PIPELINE`).
    metrics / tracer:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` and
        :class:`~repro.obs.tracer.Tracer` the per-pass statistics are
        published into (shared with the runtime's observability when
        compiling via the CLI).
    verify_each / time_passes / print_after_each:
        Forwarded to the :class:`~repro.pipeline.manager.PassManager`.
    """

    def __init__(self, mode: str = HARDENED, sync_barriers: bool = True,
                 passes=None, verify_each: Optional[bool] = None,
                 time_passes: bool = False,
                 print_after_each: bool = False,
                 metrics=None, tracer=None,
                 optimize: Optional[str] = None,
                 profile: Optional[dict] = None):
        self.mode = mode
        self.sync_barriers = sync_barriers
        self.passes = passes
        self.verify_each = verify_each
        self.time_passes = time_passes
        self.print_after_each = print_after_each
        self.metrics = metrics
        self.tracer = tracer
        #: Placement policy (``none``/``kl``/``profile``) for the
        #: ``optimize-placement`` pass, plus the measured traffic the
        #: ``profile`` policy consumes.
        self.optimize = optimize
        self.profile = profile
        self.analysis: Optional[AnalysisResult] = None
        #: The full pipeline context of the last compilation.
        self.context: Optional[CompilationContext] = None

    def compile_module(self, module: Module,
                       entries: Optional[Sequence[str]] = None
                       ) -> Optional[PartitionedProgram]:
        """Run the pass pipeline over ``module`` (mutates it).

        Returns the partitioned program, or None when a custom
        pipeline stops before the ``partition`` pass (the optimized
        module is then available as ``self.context.module``).
        """
        manager = PassManager(self.passes, verify_each=self.verify_each,
                              time_passes=self.time_passes,
                              print_after_each=self.print_after_each)
        self.context = manager.run(module, mode=self.mode,
                                   entries=entries,
                                   sync_barriers=self.sync_barriers,
                                   metrics=self.metrics,
                                   tracer=self.tracer,
                                   optimize=self.optimize,
                                   profile=self.profile)
        self.analysis = self.context.analysis
        return self.context.program

    def compile_source(self, source: str, module_name: str = "app",
                       entries: Optional[Sequence[str]] = None,
                       frontend: Optional[str] = None
                       ) -> Optional[PartitionedProgram]:
        """Compile source end to end.  ``frontend`` names a registered
        source language (default MiniC); see
        :func:`repro.secval.frontend_by_name`."""
        if frontend is None or frontend == "minic":
            from repro.frontend import compile_source as frontend_compile
            module = frontend_compile(source, module_name)
        else:
            from repro.secval import frontend_by_name
            module = frontend_by_name(frontend).compile_source(
                source, module_name)
        return self.compile_module(module, entries=entries)


def compile_and_partition(source: str, mode: str = HARDENED,
                          entries: Optional[Sequence[str]] = None,
                          sync_barriers: bool = True,
                          passes=None, optimize: Optional[str] = None,
                          profile: Optional[dict] = None,
                          frontend: Optional[str] = None
                          ) -> PartitionedProgram:
    """One-call convenience used by examples and tests."""
    compiler = PrivagicCompiler(mode, sync_barriers, passes=passes,
                                optimize=optimize, profile=profile)
    return compiler.compile_source(source, entries=entries,
                                   frontend=frontend)
