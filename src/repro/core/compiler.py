"""The Privagic compiler driver (paper Figure 5).

Pipeline::

    MiniC source ──(frontend)──► IR module with secure types
        │
        ├─ mem2reg                         (§5.1)
        ├─ multi-color struct rewriting    (§7.2, relaxed mode only)
        ├─ secure type analysis            (§6, stabilizing §5.2)
        └─ partitioning                    (§7)
                 │
                 ▼
    one module per color + interface functions + runtime metadata
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.analysis import AnalysisResult, analyze_module
from repro.core.colors import HARDENED, RELAXED
from repro.core.partition import PartitionedProgram, partition
from repro.core.structs import rewrite_multicolor_structs
from repro.ir.module import Module
from repro.ir.passes import mem2reg


class PrivagicCompiler:
    """Compiles an IR module (or MiniC source) into a partitioned
    program for the simulated SGX machine.

    Parameters
    ----------
    mode:
        ``"hardened"`` enforces confidentiality, integrity and Iago
        protection; ``"relaxed"`` drops the Iago protection but allows
        multi-color structures and F-value messaging (paper §5).
    sync_barriers:
        Generate the §7.3.3 synchronization barriers around visible
        effects (on by default).
    """

    def __init__(self, mode: str = HARDENED, sync_barriers: bool = True):
        self.mode = mode
        self.sync_barriers = sync_barriers
        self.analysis: Optional[AnalysisResult] = None

    def compile_module(self, module: Module,
                       entries: Optional[Sequence[str]] = None
                       ) -> PartitionedProgram:
        """Analyze and partition ``module`` (mutates it)."""
        mem2reg(module)
        rewrite_multicolor_structs(module, self.mode)
        self.analysis = analyze_module(module, self.mode,
                                       entries=entries)
        return partition(self.analysis, self.sync_barriers)

    def compile_source(self, source: str, module_name: str = "app",
                       entries: Optional[Sequence[str]] = None
                       ) -> PartitionedProgram:
        """Compile MiniC source end to end."""
        from repro.frontend import compile_source as frontend_compile
        module = frontend_compile(source, module_name)
        return self.compile_module(module, entries=entries)


def compile_and_partition(source: str, mode: str = HARDENED,
                          entries: Optional[Sequence[str]] = None,
                          sync_barriers: bool = True
                          ) -> PartitionedProgram:
    """One-call convenience used by examples and tests."""
    compiler = PrivagicCompiler(mode, sync_barriers)
    return compiler.compile_source(source, entries=entries)
