"""Experiment drivers for the performance evaluation (§9.2, §9.3).

Two experiment shapes:

* :class:`MapExperiment` — the §9.3 data-structure benchmark: the
  benchmark thread "directly accesses the map in the same thread
  without involving the network", so per-operation costs *add up*
  (no pipelining).  Configurations: Unprotected, Privagic-1,
  Privagic-2, Intel-sdk-1, Intel-sdk-2.  Regenerates Figures 9/10.

* :class:`CacheExperiment` — the §9.2 memcached benchmark: YCSB
  clients over loopback against a multi-threaded server, so the
  untrusted request handling and the enclave map work *pipeline*;
  throughput is set by the slowest stage, latency by their sum.
  Configurations: Unprotected, Scone, Privagic.  Regenerates Figure 8.

Both charge the :class:`~repro.sgx.costmodel.CostMeter` with the four
cost classes of the model (LLC, EPC, boundary crossings, compute).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines.intelsdk import IntelSDKDeployment
from repro.baselines.scone import SconeDeployment
from repro.sgx.cache import (
    epc_fault_ratio,
    miss_ratio_scan,
    miss_ratio_uniform,
    miss_ratio_zipfian,
)
from repro.sgx.costmodel import CostMeter, CostParams, MACHINE_A, MACHINE_B
from repro.workloads.ycsb import Workload, WorkloadSpec


@dataclass
class StructureProfile:
    """Analytic access profile of a data structure, validated against
    the instrumented implementations."""

    name: str
    #: structural node visits per operation, as f(op, n_items)
    expected_accesses: Callable
    #: memory layout: bytes of structure per item (node + pointers)
    node_bytes: int
    #: LLC access pattern of the structural walk
    pattern: str            # "uniform" | "zipfian" | "scan"
    #: EPC locality (1.0 = every excess miss faults; smaller = the
    #: pattern's hot set keeps its pages resident)
    epc_locality: float = 1.0


def _list_accesses(op: str, n: int) -> float:
    return max(1.0, n / 2.0)


def _tree_accesses(op: str, n: int) -> float:
    if n <= 1:
        return 1.0
    depth = 1.39 * math.log2(n)
    return depth + (3.0 if op in ("update", "insert", "put") else 0.0)


def _hash_accesses(op: str, n: int) -> float:
    return 2.5


PROFILES: Dict[str, StructureProfile] = {
    "linkedlist": StructureProfile("linkedlist", _list_accesses,
                                   node_bytes=32, pattern="scan",
                                   epc_locality=0.02),
    "rbtree": StructureProfile("rbtree", _tree_accesses,
                               node_bytes=48, pattern="uniform",
                               epc_locality=1.0),
    "hashmap": StructureProfile("hashmap", _hash_accesses,
                                node_bytes=32, pattern="zipfian",
                                epc_locality=0.05),
}


@dataclass
class ExperimentResult:
    deployment: str
    structure: str
    workload: str
    operations: int
    cycles: float
    throughput_ops: float
    mean_latency_us: float
    breakdown: Dict[str, float] = field(default_factory=dict)

    def row(self) -> str:
        return (f"{self.deployment:<14} {self.structure:<11} "
                f"{self.workload:<3} "
                f"{self.throughput_ops:>14,.0f} op/s "
                f"{self.mean_latency_us:>10.2f} us")


class MapExperiment:
    """The §9.3 single-thread data-structure benchmark."""

    def __init__(self, profile: StructureProfile, n_items: int,
                 spec: WorkloadSpec, operations: int = 1_000_000,
                 params: CostParams = MACHINE_A):
        self.profile = profile
        self.n_items = n_items
        self.spec = spec
        self.operations = operations
        self.params = params

    # -- shared quantities ---------------------------------------------------------

    @property
    def working_set(self) -> float:
        return self.n_items * (self.profile.node_bytes
                               + self.spec.record_bytes)

    def _value_lines(self) -> float:
        return self.spec.record_bytes / self.params.cache_line

    def miss_ratio(self) -> float:
        pattern = self.profile.pattern
        if pattern == "uniform":
            return miss_ratio_uniform(self.working_set,
                                      self.params.llc_bytes)
        if pattern == "zipfian":
            return miss_ratio_zipfian(
                self.n_items,
                self.profile.node_bytes + self.spec.record_bytes,
                self.params.llc_bytes)
        return miss_ratio_scan(self.working_set, self.params.llc_bytes)

    def _epc_faults(self, enclave_fraction: float = 1.0) -> float:
        resident = self.working_set * enclave_fraction
        return epc_fault_ratio(resident, self.params.epc_bytes,
                               self.profile.epc_locality)

    def _miss_factor_override(self, meter: CostMeter) -> None:
        # Sequential scans hide the memory-encryption latency behind
        # prefetching; random patterns pay the full Eleos penalty.
        if self.profile.pattern == "scan":
            meter.params = CostParams(**{
                **self.params.__dict__,
                "enclave_miss_factor": 1.35})

    def _accesses_per_op(self) -> float:
        per_op = 0.0
        for kind, weight in Workload(self.spec, self.n_items,
                                     1).operation_mix().items():
            per_op += weight * self.profile.expected_accesses(
                kind, self.n_items)
        return per_op

    def _enclave_op_cycles(self, meter_params: CostParams) -> float:
        """Cycles of one map operation executed in enclave mode (used
        by the SDK spin model)."""
        probe = CostMeter(meter_params)
        self._charge_map_accesses(probe, in_enclave=True)
        return probe.cycles

    def _charge_map_accesses(self, meter: CostMeter,
                             in_enclave: bool,
                             enclave_fraction: float = 1.0) -> None:
        accesses = self._accesses_per_op() + self._value_lines()
        meter.memory_accesses(
            accesses, self.miss_ratio(), in_enclave,
            self._epc_faults(enclave_fraction) if in_enclave else 0.0)

    # -- configurations ------------------------------------------------------------------

    def run(self, deployment: str) -> ExperimentResult:
        meter = CostMeter(self.params)
        self._miss_factor_override(meter)
        charge = {
            "Unprotected": self._run_unprotected,
            "Privagic-1": self._run_privagic1,
            "Privagic-2": self._run_privagic2,
            "Intel-sdk-1": self._run_sdk1,
            "Intel-sdk-2": self._run_sdk2,
        }[deployment]
        charge(meter)
        total = meter.cycles * self.operations
        seconds = self.params.seconds(total)
        return ExperimentResult(
            deployment=deployment, structure=self.profile.name,
            workload=self.spec.name, operations=self.operations,
            cycles=total,
            throughput_ops=self.operations / seconds,
            mean_latency_us=seconds / self.operations * 1e6,
            breakdown=dict(meter.breakdown))

    def _run_unprotected(self, meter: CostMeter) -> None:
        meter.compute(1)
        self._charge_map_accesses(meter, in_enclave=False)

    def _run_privagic1(self, meter: CostMeter) -> None:
        # Request + reply through the lock-free queue; the colored map
        # is walked by the enclave worker.
        meter.compute(1)
        meter.privagic_messages(2)
        self._charge_map_accesses(meter, in_enclave=True)

    def _run_privagic2(self, meter: CostMeter) -> None:
        # Keys and values in two different enclaves: the §7.2 shell
        # walk in unsafe memory, the chain in the key enclave, the
        # value copy in the value enclave — more boundary crossings per
        # request (§9.3.2: "Privagic-2 pays a large cost to cross
        # multiple enclave boundaries for each request").
        meter.compute(1)
        meter.privagic_messages(6)
        structural = self._accesses_per_op()
        meter.memory_accesses(structural, self.miss_ratio(), True,
                              self._epc_faults(0.5))
        meter.memory_accesses(self._value_lines(), self.miss_ratio(),
                              True, self._epc_faults(0.5))
        # shell indirection walked in unsafe memory
        meter.memory_accesses(structural, self.miss_ratio(), False)

    def _run_sdk1(self, meter: CostMeter) -> None:
        meter.compute(1)
        enclave_cycles = self._enclave_op_cycles(meter.params)
        IntelSDKDeployment(1).charge_op(meter, enclave_cycles)
        self._charge_map_accesses(meter, in_enclave=True)

    def _run_sdk2(self, meter: CostMeter) -> None:
        meter.compute(1)
        enclave_cycles = self._enclave_op_cycles(meter.params)
        IntelSDKDeployment(2).charge_op(meter, enclave_cycles)
        # Same split as Privagic-2, plus staging copies through
        # untrusted memory in both directions.
        structural = self._accesses_per_op()
        meter.memory_accesses(structural, self.miss_ratio(), True,
                              self._epc_faults(0.5))
        meter.memory_accesses(self._value_lines(), self.miss_ratio(),
                              True, self._epc_faults(0.5))
        meter.memory_accesses(2 * self._value_lines(),
                              self.miss_ratio(), False)


class CacheExperiment:
    """The §9.2 memcached/YCSB benchmark on machine B (Figure 8)."""

    #: YCSB drives 6 clients x 6 threads over loopback; the server
    #: runs 7 threads (§9.2).  Client and server sides saturate, so
    #: aggregate throughput scales with the server worker count.
    server_threads = 6

    #: per-request untrusted work: loopback recv + send + event loop
    network_syscalls = 2
    parse_ops = 1

    def __init__(self, n_records: int, spec: WorkloadSpec,
                 operations: int = 8_000_000,
                 params: CostParams = MACHINE_B):
        self.spec = spec
        self.operations = operations
        self.params = params
        self.map = MapExperiment(PROFILES["hashmap"], n_records, spec,
                                 operations, params)

    @property
    def dataset_bytes(self) -> float:
        return self.map.working_set

    def _untrusted_request_cycles(self, meter: CostMeter) -> float:
        probe = CostMeter(self.params)
        probe.charge("syscall", self.network_syscalls * 1_800.0,
                     self.network_syscalls)
        probe.compute(self.parse_ops)
        # connection buffers, parsing state and the reply copy of the
        # (declassified) value, all in ordinary memory
        probe.memory_accesses(8 + self.map._value_lines(), 0.05,
                              in_enclave=False)
        meter.breakdown.update(probe.breakdown)
        return probe.cycles

    def run(self, deployment: str) -> ExperimentResult:
        meter = CostMeter(self.params)
        untrusted = self._untrusted_request_cycles(meter)

        if deployment == "Unprotected":
            map_probe = CostMeter(self.params)
            self.map._charge_map_accesses(map_probe, in_enclave=False)
            map_probe.compute(1)
            stages = [untrusted + map_probe.cycles]
        elif deployment == "Privagic":
            # Pipeline: the app thread parses request n+1 while the
            # enclave worker serves request n through the queue.
            map_probe = CostMeter(self.params)
            self.map._charge_map_accesses(map_probe, in_enclave=True)
            map_probe.compute(1)
            msg = 2 * self.params.privagic_message_cycles
            stages = [untrusted + msg, map_probe.cycles + msg]
        elif deployment == "Scone":
            map_probe = CostMeter(self.params)
            scone = SconeDeployment()
            scone.charge_request(
                map_probe,
                self.map._accesses_per_op(),
                self.map._value_lines(),
                self.map.miss_ratio(),
                self.map._epc_faults())
            # untrusted-side work also runs inside the enclave, with
            # each syscall exiting through the switchless layer
            # (already charged by charge_request); parsing buffers are
            # enclave memory.
            map_probe.memory_accesses(8, 0.05, in_enclave=True)
            stages = [map_probe.cycles]
        else:
            raise ValueError(deployment)

        latency_cycles = sum(stages)
        bottleneck = max(stages)
        seconds_per_op = self.params.seconds(bottleneck)
        throughput = self.server_threads / seconds_per_op
        return ExperimentResult(
            deployment=deployment, structure="minicache",
            workload=self.spec.name, operations=self.operations,
            cycles=latency_cycles * self.operations,
            throughput_ops=throughput,
            mean_latency_us=self.params.seconds(latency_cycles) * 1e6,
            breakdown=dict(meter.breakdown))
