"""repro.apps — the evaluated applications and deployment models.

* :mod:`repro.apps.minicache` — the memcached stand-in: a
  multi-threaded, event-based in-memory KV cache with a text protocol,
  LRU eviction and one central hash table (paper §9.2).
* :mod:`repro.apps.deployments` — the experiment drivers wiring data
  structures and minicache onto the Unprotected / Privagic / Scone /
  Intel-SDK cost models (Figures 8, 9 and 10).
"""

from repro.apps.deployments import (
    MapExperiment,
    CacheExperiment,
    StructureProfile,
    PROFILES,
)

__all__ = [
    "MapExperiment", "CacheExperiment", "StructureProfile", "PROFILES",
]
