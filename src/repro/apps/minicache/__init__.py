"""minicache — the memcached stand-in of the evaluation (paper §9.2).

Like memcached 1.6.12, minicache is an event-based multi-worker
in-memory KV cache with one central hash table and LRU eviction:

* :mod:`repro.apps.minicache.protocol` — the memcached text protocol
  (get/set/delete subset);
* :mod:`repro.apps.minicache.lru` — byte-budgeted LRU eviction;
* :mod:`repro.apps.minicache.server` — the cache and its worker pool;
* :mod:`repro.apps.minicache.client` — a protocol client + YCSB driver;
* :mod:`repro.apps.minicache.minic_source` — the MiniC version whose
  central map is colored for Privagic, with its pristine twin; the
  Table 4 engineering-effort and TCB metrics diff and compile these.
"""

from repro.apps.minicache.server import MiniCache, CacheStats
from repro.apps.minicache.client import MiniCacheClient
from repro.apps.minicache.lru import LRUIndex

__all__ = ["MiniCache", "CacheStats", "MiniCacheClient", "LRUIndex"]
