"""The memcached text protocol (the subset YCSB exercises).

Requests::

    set <key> <flags> <exptime> <bytes>\\r\\n<data>\\r\\n
    get <key>\\r\\n
    delete <key>\\r\\n

Responses::

    STORED\\r\\n
    VALUE <key> <flags> <bytes>\\r\\n<data>\\r\\nEND\\r\\n
    END\\r\\n                      (miss)
    DELETED\\r\\n / NOT_FOUND\\r\\n
    ERROR\\r\\n
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

CRLF = "\r\n"


class Request(NamedTuple):
    command: str                 # "set" | "get" | "delete"
    key: str
    flags: int = 0
    exptime: int = 0
    data: bytes = b""


class ProtocolError(ValueError):
    pass


def parse_request(text: str) -> Request:
    """Parse one complete request (header line [+ data line])."""
    if CRLF not in text:
        raise ProtocolError("request not terminated")
    header, _, rest = text.partition(CRLF)
    parts = header.split()
    if not parts:
        raise ProtocolError("empty request")
    command = parts[0].lower()
    if command == "get":
        if len(parts) != 2:
            raise ProtocolError("get expects one key")
        return Request("get", parts[1])
    if command == "delete":
        if len(parts) != 2:
            raise ProtocolError("delete expects one key")
        return Request("delete", parts[1])
    if command == "set":
        if len(parts) != 5:
            raise ProtocolError("set expects key flags exptime bytes")
        key, flags, exptime, nbytes = parts[1:]
        size = int(nbytes)
        data = rest[:size].encode("latin-1")
        if len(data) != size:
            raise ProtocolError(
                f"set: expected {size} data bytes, got {len(data)}")
        return Request("set", key, int(flags), int(exptime), data)
    raise ProtocolError(f"unknown command {command!r}")


def encode_set(key: str, data: bytes, flags: int = 0,
               exptime: int = 0) -> str:
    return (f"set {key} {flags} {exptime} {len(data)}{CRLF}"
            f"{data.decode('latin-1')}{CRLF}")


def encode_get(key: str) -> str:
    return f"get {key}{CRLF}"


def encode_delete(key: str) -> str:
    return f"delete {key}{CRLF}"


def encode_value(key: str, data: bytes, flags: int = 0) -> str:
    return (f"VALUE {key} {flags} {len(data)}{CRLF}"
            f"{data.decode('latin-1')}{CRLF}END{CRLF}")


STORED = f"STORED{CRLF}"
END = f"END{CRLF}"
DELETED = f"DELETED{CRLF}"
NOT_FOUND = f"NOT_FOUND{CRLF}"
ERROR = f"ERROR{CRLF}"


def parse_value_response(text: str) -> Optional[bytes]:
    """Extract the data from a VALUE response; None for a miss."""
    if text == END:
        return None
    if not text.startswith("VALUE "):
        raise ProtocolError(f"unexpected response {text[:32]!r}")
    header, _, rest = text.partition(CRLF)
    size = int(header.split()[3])
    return rest[:size].encode("latin-1")
