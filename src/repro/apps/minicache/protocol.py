"""The memcached text protocol (the subset YCSB exercises).

Requests::

    set <key> <flags> <exptime> <bytes>\\r\\n<data>\\r\\n
    get <key>\\r\\n
    delete <key>\\r\\n

Responses::

    STORED\\r\\n
    VALUE <key> <flags> <bytes>\\r\\n<data>\\r\\nEND\\r\\n
    END\\r\\n                      (miss)
    DELETED\\r\\n / NOT_FOUND\\r\\n
    ERROR\\r\\n
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

CRLF = "\r\n"

#: Protocol limits (memcached's defaults): keys are at most 250
#: bytes and values at most 1 MiB.  Requests beyond these are
#: rejected as malformed instead of allocating attacker-chosen
#: amounts of memory.
MAX_KEY_BYTES = 250
MAX_DATA_BYTES = 1 << 20


class Request(NamedTuple):
    command: str                 # "set" | "get" | "delete"
    key: str
    flags: int = 0
    exptime: int = 0
    data: bytes = b""


class ProtocolError(ValueError):
    pass


def _int_field(token: str, what: str) -> int:
    """Parse a protocol integer field; malformed digits are a
    protocol error, never a stray ``ValueError`` crash."""
    try:
        value = int(token)
    except ValueError:
        raise ProtocolError(f"{what} is not a number: {token!r}")
    if value < 0:
        raise ProtocolError(f"{what} is negative: {value}")
    return value


def _checked_key(key: str) -> str:
    if len(key) > MAX_KEY_BYTES:
        raise ProtocolError(
            f"key of {len(key)} bytes exceeds the {MAX_KEY_BYTES}-"
            f"byte limit")
    return key


def parse_request(text: str) -> Request:
    """Parse one complete request (header line [+ data line]).

    Every malformation — bad command, wrong arity, non-numeric or
    negative sizes, oversized key/value, non-latin-1 data — raises
    :class:`ProtocolError`, so ``MiniCache.handle`` (and the socket
    server built on it) can answer ``ERROR`` instead of crashing.
    """
    if CRLF not in text:
        raise ProtocolError("request not terminated")
    header, _, rest = text.partition(CRLF)
    parts = header.split()
    if not parts:
        raise ProtocolError("empty request")
    command = parts[0].lower()
    if command == "get":
        if len(parts) != 2:
            raise ProtocolError("get expects one key")
        return Request("get", _checked_key(parts[1]))
    if command == "delete":
        if len(parts) != 2:
            raise ProtocolError("delete expects one key")
        return Request("delete", _checked_key(parts[1]))
    if command == "set":
        if len(parts) != 5:
            raise ProtocolError("set expects key flags exptime bytes")
        key, flags, exptime, nbytes = parts[1:]
        size = _int_field(nbytes, "set: byte count")
        if size > MAX_DATA_BYTES:
            raise ProtocolError(
                f"set: {size} data bytes exceed the "
                f"{MAX_DATA_BYTES}-byte limit")
        try:
            data = rest[:size].encode("latin-1")
        except UnicodeEncodeError:
            raise ProtocolError("set: data is not latin-1")
        if len(data) != size:
            raise ProtocolError(
                f"set: expected {size} data bytes, got {len(data)}")
        return Request("set", _checked_key(key),
                       _int_field(flags, "set: flags"),
                       _int_field(exptime, "set: exptime"), data)
    raise ProtocolError(f"unknown command {command!r}")


def encode_set(key: str, data: bytes, flags: int = 0,
               exptime: int = 0) -> str:
    return (f"set {key} {flags} {exptime} {len(data)}{CRLF}"
            f"{data.decode('latin-1')}{CRLF}")


def encode_get(key: str) -> str:
    return f"get {key}{CRLF}"


def encode_delete(key: str) -> str:
    return f"delete {key}{CRLF}"


def encode_value(key: str, data: bytes, flags: int = 0) -> str:
    return (f"VALUE {key} {flags} {len(data)}{CRLF}"
            f"{data.decode('latin-1')}{CRLF}END{CRLF}")


STORED = f"STORED{CRLF}"
END = f"END{CRLF}"
DELETED = f"DELETED{CRLF}"
NOT_FOUND = f"NOT_FOUND{CRLF}"
ERROR = f"ERROR{CRLF}"
#: Backpressure response of the socket server (repro.serve): the
#: pending-request queue is full and this request was shed.
SERVER_BUSY = f"SERVER_BUSY{CRLF}"
#: Degraded-mode response of the sharded router (repro.serve): the
#: shard owning this key is confirmed dead and its state was not
#: migrated, so the request cannot be served until the shard returns.
SHARD_UNAVAILABLE = f"SHARD_UNAVAILABLE{CRLF}"


def parse_value_response(text: str) -> Optional[bytes]:
    """Extract the data from a VALUE response; None for a miss."""
    if text == END:
        return None
    if not text.startswith("VALUE "):
        raise ProtocolError(f"unexpected response {text[:32]!r}")
    header, _, rest = text.partition(CRLF)
    fields = header.split()
    if len(fields) != 4:
        raise ProtocolError(f"malformed VALUE header {header!r}")
    size = _int_field(fields[3], "VALUE: byte count")
    return rest[:size].encode("latin-1")
