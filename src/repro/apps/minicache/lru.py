"""Byte-budgeted LRU index (memcached keeps "the least recently used
key/value pairs in memory" via a background thread; §9.2)."""

from __future__ import annotations

from typing import Dict, List, Optional


class _Node:
    __slots__ = ("key", "size", "prev", "next")

    def __init__(self, key, size: int):
        self.key = key
        self.size = size
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class LRUIndex:
    """Doubly linked LRU list with a byte budget.

    ``touch`` moves a key to the MRU end; ``add`` registers a new key
    and returns the keys that must be evicted to stay within budget.
    """

    def __init__(self, capacity_bytes: int):
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._nodes: Dict[object, _Node] = {}
        self._head: Optional[_Node] = None  # MRU
        self._tail: Optional[_Node] = None  # LRU

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key) -> bool:
        return key in self._nodes

    # -- list plumbing ---------------------------------------------------------

    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None

    def _push_front(self, node: _Node) -> None:
        node.next = self._head
        node.prev = None
        if self._head is not None:
            self._head.prev = node
        self._head = node
        if self._tail is None:
            self._tail = node

    # -- operations --------------------------------------------------------------

    def touch(self, key) -> None:
        node = self._nodes.get(key)
        if node is None or node is self._head:
            return
        self._unlink(node)
        self._push_front(node)

    def add(self, key, size: int) -> List[object]:
        """Track ``key``; returns the evicted keys (never ``key``)."""
        existing = self._nodes.get(key)
        if existing is not None:
            self.used_bytes -= existing.size
            self._unlink(existing)
            del self._nodes[key]
        node = _Node(key, size)
        self._nodes[key] = node
        self._push_front(node)
        self.used_bytes += size
        evicted = []
        while self.used_bytes > self.capacity_bytes and \
                self._tail is not None and self._tail is not node:
            victim = self._tail
            self._unlink(victim)
            del self._nodes[victim.key]
            self.used_bytes -= victim.size
            evicted.append(victim.key)
        return evicted

    def remove(self, key) -> bool:
        node = self._nodes.pop(key, None)
        if node is None:
            return False
        self._unlink(node)
        self.used_bytes -= node.size
        return True

    def lru_order(self) -> List[object]:
        """Keys from most to least recently used."""
        order = []
        node = self._head
        while node is not None:
            order.append(node.key)
            node = node.next
        return order
