"""The minicache server: central hash table + LRU + worker pool.

Mirrors the memcached architecture the paper describes (§9.2): an
event-based design where a listener dispatches requests to worker
threads; the workers share one central map and an LRU maintenance
structure.  The simulated worker pool is deterministic: requests are
dispatched round-robin and each worker keeps its own counters, which
the Figure 8 experiment aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.minicache import protocol
from repro.apps.minicache.lru import LRUIndex
from repro.apps.minicache.protocol import Request
from repro.datastructures.hashmap import ChainingHashMap
from repro.datastructures.instrumented import AccessCounter


@dataclass
class CacheStats:
    gets: int = 0
    hits: int = 0
    sets: int = 0
    deletes: int = 0
    evictions: int = 0
    bad_requests: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.gets if self.gets else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.gets + other.gets, self.hits + other.hits,
            self.sets + other.sets, self.deletes + other.deletes,
            self.evictions + other.evictions,
            self.bad_requests + other.bad_requests)


class MiniCache:
    """The cache core shared by all workers."""

    def __init__(self, capacity_bytes: int = 64 * 1024 * 1024,
                 counter: Optional[AccessCounter] = None):
        self.counter = counter or AccessCounter()
        self.map = ChainingHashMap(counter=self.counter)
        self.lru = LRUIndex(capacity_bytes)
        self.stats = CacheStats()
        #: Optional ``key -> None`` callback fired for every LRU
        #: eviction.  The socket server (repro.serve) uses it to keep
        #: the enclave-side key index in sync with the untrusted
        #: store, so an evicted key does not read as an integrity
        #: violation later.
        self.on_evict = None

    # -- operations --------------------------------------------------------------

    def set(self, key: str, data: bytes) -> None:
        self.map.put(key, data)
        for victim in self.lru.add(key, len(data) + len(key)):
            self.map.delete(victim)
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)
        self.stats.sets += 1

    def get(self, key: str) -> Optional[bytes]:
        value = self.map.get(key)
        self.stats.gets += 1
        if value is not None:
            self.stats.hits += 1
            self.lru.touch(key)
        return value

    def delete(self, key: str) -> bool:
        removed = self.map.delete(key)
        if removed:
            self.lru.remove(key)
            self.stats.deletes += 1
        return removed

    def __len__(self) -> int:
        return len(self.map)

    # -- protocol endpoint ----------------------------------------------------------

    def handle(self, raw_request: str) -> str:
        try:
            request = protocol.parse_request(raw_request)
        except protocol.ProtocolError:
            self.stats.bad_requests += 1
            return protocol.ERROR
        return self.dispatch(request)

    def dispatch(self, request: Request) -> str:
        if request.command == "set":
            self.set(request.key, request.data)
            return protocol.STORED
        if request.command == "get":
            value = self.get(request.key)
            if value is None:
                return protocol.END
            return protocol.encode_value(request.key, value)
        if request.command == "delete":
            return (protocol.DELETED if self.delete(request.key)
                    else protocol.NOT_FOUND)
        self.stats.bad_requests += 1
        return protocol.ERROR


class WorkerPool:
    """Round-robin dispatch over N workers sharing one cache — the
    paper's 7-thread memcached configuration (1 listener + workers).
    """

    def __init__(self, cache: MiniCache, workers: int = 6):
        self.cache = cache
        self.workers = workers
        self.per_worker_requests: List[int] = [0] * workers
        self._next = 0

    def submit(self, raw_request: str) -> str:
        worker = self._next
        self._next = (self._next + 1) % self.workers
        self.per_worker_requests[worker] += 1
        return self.cache.handle(raw_request)

    @property
    def total_requests(self) -> int:
        return sum(self.per_worker_requests)
