"""Protocol client and YCSB driver for minicache.

The driver plays the role of the paper's Java YCSB client (§9.2): it
turns a :class:`~repro.workloads.ycsb.Workload` stream into protocol
requests against a server (a :class:`~repro.apps.minicache.server
.WorkerPool` in-process here; the cost model supplies the loopback
network costs in the Figure 8 experiment)."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.apps.minicache import protocol
from repro.workloads.ycsb import Workload


class MiniCacheClient:
    """Talks the memcached text protocol to a request-handling
    callable (``raw_request -> raw_response``)."""

    def __init__(self, endpoint: Callable[[str], str]):
        self.endpoint = endpoint

    def set(self, key: str, data: bytes) -> bool:
        return self.endpoint(protocol.encode_set(key, data)) == \
            protocol.STORED

    def get(self, key: str) -> Optional[bytes]:
        return protocol.parse_value_response(
            self.endpoint(protocol.encode_get(key)))

    def delete(self, key: str) -> bool:
        return self.endpoint(protocol.encode_delete(key)) == \
            protocol.DELETED


def run_ycsb(client: MiniCacheClient, workload: Workload,
             preload: bool = True) -> Dict[str, int]:
    """Drive the workload through the protocol; returns op counters.

    Records are ``record_bytes`` of deterministic filler, like YCSB's
    field generator."""
    record = bytes(ord("a") + i % 26
                   for i in range(workload.spec.record_bytes))
    if preload:
        for key in range(workload.record_count):
            client.set(f"user{key}", record)
    counters = {"read": 0, "update": 0, "insert": 0, "rmw": 0,
                "hits": 0}
    for op in workload.operations():
        key = f"user{op.key}"
        if op.kind == "read":
            if client.get(key) is not None:
                counters["hits"] += 1
        elif op.kind in ("update", "insert"):
            client.set(key, record)
        elif op.kind == "rmw":
            client.get(key)
            client.set(key, record)
        counters[op.kind] += 1
    return counters
