"""The MiniC version of minicache, pristine and Privagic-annotated.

This is the subject of the Table 4 metrics:

* **engineering effort** — the line diff between the two sources
  (the paper reports 9 modified lines for memcached: 2 to color the
  central map, 7 to classify/declassify values at the boundary);
* **TCB** — compiling the annotated source in hardened mode and
  counting the IR inside the ``store`` enclave versus the whole
  program (§9.2.2: 1 238 lines of LLVM in the enclave versus 78 106
  for the full application under Scone).

The annotated style follows the paper's memcached port: the fields of
the central map's entries are colored; request keys are *classified*
into an enclave scratch before they may be hashed and compared against
stored keys; results are *declassified* through ``ignore`` helpers
before they can reach the reply path (§6.4).
"""

from __future__ import annotations

from typing import List, Tuple

#: The pristine cache core: a chained hash table used by the request
#: loop, with uncolored data.  Single-exit loops (no early return from
#: inside a data-dependent branch) — the style the partitioner
#: supports, see DESIGN.md.
PRISTINE_SOURCE = """
struct item {
    long key;
    long value[16];
    struct item* next;
};

struct item* buckets[64];
long cache_count = 0;
long stat_gets = 0;
long stat_hits = 0;
long stat_sets = 0;

long bucket_of(long k) {
    long h = hash64(k);
    if (h < 0) h = 0 - h;
    return h % 64;
}

void cache_set(long key, long* data) {
    long k = key;
    long b = bucket_of(k);
    struct item* e = buckets[b];
    struct item* found = 0;
    while (e != 0) {
        if (e->key == k) found = e;
        e = e->next;
    }
    if (found == 0) {
        found = malloc(sizeof(struct item));
        found->key = k;
        found->next = buckets[b];
        buckets[b] = found;
        cache_count = cache_count + 1;
    }
    memcpy(found->value, data, 16);
    stat_sets = stat_sets + 1;
}

int cache_get(long key, long* out) {
    long k = key;
    long b = bucket_of(k);
    struct item* e = buckets[b];
    int hit = 0;
    while (e != 0) {
        if (e->key == k) {
            memcpy(out, e->value, 16);
            hit = 1;
        }
        e = e->next;
    }
    stat_gets = stat_gets + 1;
    if (hit) stat_hits = stat_hits + 1;
    return hit;
}

entry long run_cache(long operations) {
    long buf[16];
    long out[16];
    long hits = 0;
    for (long i = 0; i < operations; i++) {
        long key = (i * 7) % 32;
        buf[0] = key * 1000;
        cache_set(key, buf);
        hits = hits + cache_get(key, out);
    }
    return hits;
}
"""

#: The annotated twin.  Changed/added lines carry a `/* [N] */` tag so
#: the effort metric can explain itself; the diff is computed against
#: the pristine text, not the tags.
ANNOTATED_SOURCE = """
ignore long classify(long v);                               /* [1] */
ignore void classify_copy(long* dst, long* src, long n);    /* [2] */
ignore long declassify(long v);                             /* [3] */
ignore void declassify_copy(long* dst, long* src, long n);  /* [4] */

struct item {
    long color(store) key;                                  /* [5] */
    long color(store) value[16];                            /* [6] */
    struct item* next;
};

struct item* buckets[64];
long cache_count = 0;
long stat_gets = 0;
long stat_hits = 0;
long stat_sets = 0;

long bucket_of(long k) {
    long h = hash64(k);
    if (h < 0) h = 0 - h;
    return h % 64;
}

void cache_set(long key, long* data) {
    long k = classify(key);                                 /* [7] */
    long b = bucket_of(k);
    struct item* e = buckets[b];
    struct item* found = 0;
    while (e != 0) {
        if (e->key == k) found = e;
        e = e->next;
    }
    long miss = declassify(found == 0);                     /* [8] */
    if (miss) {                                             /* [9] */
        found = malloc(sizeof(struct item));
        found->key = k;
        found->next = buckets[b];
        buckets[b] = found;
        cache_count = cache_count + 1;
    }
    classify_copy(found->value, data, 16);                  /* [10] */
    stat_sets = stat_sets + 1;
}

int cache_get(long key, long* out) {
    long k = classify(key);                                 /* [11] */
    long b = bucket_of(k);
    struct item* e = buckets[b];
    int hit = 0;
    while (e != 0) {
        if (e->key == k) {
            declassify_copy(out, e->value, 16);             /* [12] */
            hit = 1;
        }
        e = e->next;
    }
    stat_gets = stat_gets + 1;
    long dhit = declassify(hit);                            /* [13] */
    if (dhit) stat_hits = stat_hits + 1;                    /* [14] */
    return dhit;                                            /* [15] */
}

entry long run_cache(long operations) {
    long buf[16];
    long out[16];
    long hits = 0;
    for (long i = 0; i < operations; i++) {
        long key = (i * 7) % 32;
        buf[0] = key * 1000;
        cache_set(key, buf);
        hits = hits + cache_get(key, out);
    }
    return hits;
}
"""

#: Surrounding application code — request parsing, reply formatting,
#: statistics, expiry bookkeeping — identical in both versions (the
#: part of memcached that stays *outside* the enclave; it is what
#: makes the Table 4 TCB ratio meaningful: the paper's enclave holds
#: 1 238 lines of LLVM out of 78 106 for the whole application).
APPLICATION_EXTRAS = """
long req_buf[64];
long resp_buf[64];
long stat_errors = 0;
long stat_requests = 0;
long expiry_clock = 0;

long parse_digit(long c) {
    if (c >= 48 && c <= 57) return c - 48;
    return 0 - 1;
}

long parse_number(long* buf, long start, long end) {
    long value = 0;
    for (long i = start; i < end; i++) {
        long d = parse_digit(buf[i]);
        if (d < 0) { stat_errors = stat_errors + 1; return 0 - 1; }
        value = value * 10 + d;
    }
    return value;
}

long parse_command(long* buf) {
    /* 1 = get, 2 = set, 3 = delete, -1 = error */
    long c = buf[0];
    if (c == 103) return 1;
    if (c == 115) return 2;
    if (c == 100) return 3;
    stat_errors = stat_errors + 1;
    return 0 - 1;
}

void format_number(long* buf, long start, long value) {
    long i = start;
    if (value == 0) { buf[i] = 48; return; }
    long digits[20];
    long n = 0;
    while (value > 0) {
        digits[n] = 48 + value % 10;
        value = value / 10;
        n = n + 1;
    }
    while (n > 0) {
        n = n - 1;
        buf[i] = digits[n];
        i = i + 1;
    }
}

void format_reply(long* buf, long hit, long key) {
    if (hit) {
        buf[0] = 86;                  /* 'V' */
        format_number(buf, 1, key);
    } else {
        buf[0] = 69;                  /* 'E' */
        buf[1] = 78;                  /* 'N' */
        buf[2] = 68;                  /* 'D' */
    }
}

long checksum(long* buf, long n) {
    long sum = 0;
    for (long i = 0; i < n; i++)
        sum = sum * 31 + buf[i];
    return sum;
}

void note_request(long kind) {
    stat_requests = stat_requests + 1;
    expiry_clock = expiry_clock + 1;
    if (kind == 2) stat_sets_seen = stat_sets_seen + 1;
}

long stat_sets_seen = 0;

long drain_expired(long budget) {
    long drained = 0;
    for (long i = 0; i < budget; i++) {
        if (expiry_clock % 7 == 3) drained = drained + 1;
        expiry_clock = expiry_clock + 1;
    }
    return drained;
}

entry long serve(long requests) {
    long handled = 0;
    for (long r = 0; r < requests; r++) {
        req_buf[0] = 103;
        req_buf[1] = 48 + r % 10;
        long cmd = parse_command(req_buf);
        note_request(cmd);
        long key = parse_number(req_buf, 1, 2);
        long out[16];
        long hit = 0;
        if (cmd == 2) {
            cache_set(key, req_buf);
        } else {
            if (cmd == 1) hit = cache_get(key, out);
        }
        format_reply(resp_buf, hit, key);
        handled = handled + checksum(resp_buf, 4) % 2;
        drain_expired(2);
    }
    return handled;
}
"""

#: Whole-application sources: cache core + surrounding app code.
FULL_PRISTINE = PRISTINE_SOURCE + APPLICATION_EXTRAS
FULL_ANNOTATED = ANNOTATED_SOURCE + APPLICATION_EXTRAS

#: Default externals for the two ignore helpers when running the
#: partitioned program on the interpreter.
DECLASSIFY_EXTERNALS = {
    "classify": lambda machine, ctx, args: args[0],
    "declassify": lambda machine, ctx, args: args[0],
    "classify_copy": lambda machine, ctx, args: _copy(machine, ctx,
                                                      args),
    "declassify_copy": lambda machine, ctx, args: _copy(machine, ctx,
                                                        args),
}


def _copy(machine, ctx, args):
    dst, src, n = int(args[0]), int(args[1]), int(args[2])
    for i in range(n):
        machine.memory.write(dst + i, machine.memory.read(src + i))
    return None


def _significant(line: str) -> str:
    """Strip the explanation tags and whitespace for diffing."""
    if "/*" in line:
        line = line[:line.index("/*")]
    return " ".join(line.split())


def modified_lines() -> Tuple[int, List[str]]:
    """Count lines changed or added by the annotation (the Table 4
    "Modified" column; memcached: 9)."""
    pristine = [_significant(l) for l in PRISTINE_SOURCE.splitlines()]
    pristine = [l for l in pristine if l]
    changed: List[str] = []
    for raw in ANNOTATED_SOURCE.splitlines():
        line = _significant(raw)
        if not line:
            continue
        if line in pristine:
            pristine.remove(line)
        else:
            changed.append(line)
    return len(changed), changed
