#!/usr/bin/env python
"""Partitioning minicache (the §9.2 memcached experiment, end to end).

1. compile the annotated MiniC minicache in hardened mode and compare
   the resulting enclave TCB with the whole application;
2. run the partitioned cache on the worker/channel runtime under the
   SGX access policy and check it against the pristine version;
3. replay the Figure 8 throughput experiment on the cost model.

Run:  python examples/memcached_partitioning.py
"""

from repro.apps.deployments import CacheExperiment
from repro.apps.minicache.minic_source import (
    DECLASSIFY_EXTERNALS,
    FULL_ANNOTATED,
    FULL_PRISTINE,
    modified_lines,
)
from repro.core.compiler import compile_and_partition
from repro.frontend import compile_source
from repro.ir.interp import Machine
from repro.runtime import PrivagicRuntime
from repro.sgx import SGXAccessPolicy
from repro.sgx.costmodel import MIB
from repro.workloads import WORKLOAD_A


def main() -> None:
    count, _ = modified_lines()
    print(f"Annotation effort: {count} modified lines "
          f"(paper's memcached: 9)")

    print("\nCompiling the annotated minicache (hardened mode)...")
    program = compile_and_partition(FULL_ANNOTATED, mode="hardened")
    sizes = {c: program.modules[c].instruction_count()
             for c in program.colors}
    total = sum(sizes.values())
    print(f"  partitions: {sizes}")
    print(f"  enclave holds {sizes['store']} of {total} instructions "
          f"({100 * sizes['store'] / total:.0f}%); a Scone-style full "
          f"embed would hold 100% plus libc and a libOS")

    print("\nRunning 60 requests, partitioned vs pristine...")
    machine = Machine(compile_source(FULL_PRISTINE))
    expected = machine.run_function("serve", [60])
    runtime = PrivagicRuntime(program, DECLASSIFY_EXTERNALS,
                              max_steps=80_000_000)
    SGXAccessPolicy().attach(runtime.machine)
    result = runtime.run("serve", [60])
    print(f"  pristine: {expected}, partitioned: {result}")
    assert result == expected
    print(f"  message traffic: {runtime.stats.as_dict()}")

    print("\nFigure 8 on the cost model (machine B, workload A):")
    print(f"  {'dataset':>10} {'Unprotected':>14} {'Privagic':>14} "
          f"{'Scone':>12}")
    for size_mib in (1, 64, 1024, 8192, 32768):
        experiment = CacheExperiment(max(1, size_mib * MIB // 1024),
                                     WORKLOAD_A)
        row = [experiment.run(d).throughput_ops
               for d in ("Unprotected", "Privagic", "Scone")]
        print(f"  {size_mib:>7}MiB {row[0]:>14,.0f} {row[1]:>14,.0f} "
              f"{row[2]:>12,.0f}")
    print("\nShape check (paper §9.2.3): Privagic ~8.5-10x Scone on "
          "small datasets, within 5-20% of Unprotected; at 32 GiB "
          "Privagic degrades but stays >= 2.3x Scone.")


if __name__ == "__main__":
    main()
