// The MiniC half of the cross-language example: enclave logic over a
// colored balance, driven by the MiniPy workload script in
// vault_workload.mpy (see examples/cross_language.py).
//
// Both files lower into ONE IR module through the secure-value
// contract, so the MiniPy call sites resolve these functions
// directly — with normal argument coercion between MiniPy's 64-bit
// ints and MiniC's declared types.

long color(vault) balance = 1000;
long audit_log = 0;

ignore long audit(long v) {
    // Declassification: only the last two digits leave the enclave.
    return v % 100;
}

long deposit(long amount) {
    balance = balance + amount;
    audit_log = audit_log + 1;
    return audit(balance);
}

int fee_schedule(int tier) {
    // An int-typed helper: MiniPy arguments truncate to i32 on the
    // way in and the result sign-extends back to i64 at use sites.
    return tier * 3 + 1;
}
