#!/usr/bin/env python
"""Two colors: keys and values in different enclaves (§9.3, Fig 10).

A hashmap whose keys live in the 'kenc' enclave and whose values live
in the 'venc' enclave — the Privagic-2 configuration.  Uses relaxed
mode and the §7.2 multi-color structure rewriting: the entry shell
stays in unsafe memory holding opaque pointers into both enclaves.

Run:  python examples/two_color_hashmap.py
"""

from repro.apps.deployments import MapExperiment, PROFILES
from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.ir.interp import enclave_region
from repro.runtime import PrivagicRuntime
from repro.sgx import SGXAccessPolicy
from repro.workloads import WORKLOAD_A

SOURCE = """
    ignore long declassify(long v);

    struct pair {
        long color(kenc) key;
        long color(venc) value;
    };

    struct pair* slots[8];

    void put(long k, long v) {
        long i = k % 8;
        struct pair* p = slots[i];
        if (p == 0) {
            p = malloc(sizeof(struct pair));
            slots[i] = p;
        }
        p->key = k;
        p->value = v;
    }

    long get(long k) {
        long i = k % 8;
        struct pair* p = slots[i];
        long out = 0;
        if (p != 0) {
            /* The match bit must be declassified before it may steer
               the (observable) walk to the value enclave — the same
               "declassify the result of a get" line the paper counts
               for its two-color hashmap (§9.3.1). */
            long match = declassify(p->key == k);
            if (match) out = declassify(p->value);
        }
        return out;
    }

    entry long run_ops() {
        put(3, 300);
        put(5, 500);
        long a = get(3);
        long b = get(5);
        long miss = get(4);
        return a + b + miss;
    }
"""


def main() -> None:
    print("Compiling the two-color hashmap (relaxed mode)...")
    program = compile_and_partition(SOURCE, mode=RELAXED)
    print(f"  partitions: {program.colors}")

    runtime = PrivagicRuntime(
        program, {"declassify": lambda m, c, a: a[0]})
    SGXAccessPolicy().attach(runtime.machine)
    result = runtime.run("run_ops")
    print(f"  run_ops() = {result} (expected 800)")
    assert result == 800

    regions = {a.region for a in
               runtime.machine.memory.live_allocations()}
    assert enclave_region("kenc") in regions
    assert enclave_region("venc") in regions
    print("  keys allocated in enclave:kenc, values in enclave:venc, "
          "shells in unsafe memory (§7.2 indirection)")
    print(f"  messages: {runtime.stats.as_dict()}")

    print("\nFigure 10 shape on the cost model (machine A, 20k keys):")
    experiment = MapExperiment(PROFILES["hashmap"], 20_000, WORKLOAD_A)
    for deployment in ("Unprotected", "Privagic-2", "Intel-sdk-2"):
        r = experiment.run(deployment)
        print(f"  {deployment:<12} {r.mean_latency_us:>8.2f} us/op")
    sdk = experiment.run("Intel-sdk-2").mean_latency_us
    privagic = experiment.run("Privagic-2").mean_latency_us
    print(f"  Privagic divides the Intel-SDK latency by "
          f"{sdk / privagic:.1f} (paper: 6.4-9.2)")


if __name__ == "__main__":
    main()
