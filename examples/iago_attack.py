#!/usr/bin/env python
"""Iago attacks and the hardened/relaxed trade-off (§4, §5.3, §6.1.2).

An Iago attack feeds a poisoned value from attacker-controlled memory
into an enclave.  In hardened mode Privagic rejects the vulnerable
program at compile time (a value loaded from U stays U and cannot be
consumed by enclave code); in relaxed mode the program compiles — and
the demo carries out the attack to show the documented gap.

Run:  python examples/iago_attack.py
"""

from repro.core.colors import HARDENED, RELAXED
from repro.core.compiler import compile_and_partition
from repro.errors import SecureTypeError
from repro.runtime import PrivagicRuntime
from repro.sgx import Attacker, SGXAccessPolicy

SOURCE = """
    long table_size = 4;          /* unsafe: the attacker owns this */
    long color(safe) limit = 100;
    long color(safe) state = 0;

    entry long step() {
        state = state + table_size;   /* enclave consumes U data */
        long ok = 0;
        if (state < limit) ok = 1;
        return 0;
    }
"""


def main() -> None:
    print("Hardened mode on the vulnerable program:")
    try:
        compile_and_partition(SOURCE, mode=HARDENED)
        raise AssertionError("hardened mode must reject this")
    except SecureTypeError as error:
        print(f"  rejected at compile time: {error}")
        print("  (Rule 2: a 'safe' instruction cannot consume a U "
              "value — the Iago protection of §5.3)")

    print("\nRelaxed mode compiles the same program:")
    program = compile_and_partition(SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    SGXAccessPolicy().attach(runtime.machine)

    print("  the attacker poisons table_size before the enclave runs")
    attacker = Attacker(runtime.machine)
    attacker.corrupt_global("table_size", 10_000_000)

    runtime.run("step")
    state = _read_global(runtime, "state")
    print(f"  enclave state after one step: {state} "
          f"(uncorrupted would be 4)")
    assert state == 10_000_000
    print("  => the poisoned value flowed into the enclave: relaxed "
          "mode trades the Iago guarantee for flexibility (§6.1.2).")

    print("\nWhat the attacker still cannot do (either mode):")
    try:
        attacker.corrupt_global("state", 0)
    except Exception as error:
        print(f"  write enclave state directly: {type(error).__name__}")
    try:
        attacker.try_read_enclave("safe")
    except Exception as error:
        print(f"  read enclave memory: {type(error).__name__}")


def _read_global(runtime, name):
    for module in runtime.machine.modules:
        gv = module.globals.get(name)
        if gv is not None:
            return runtime.machine.memory.read(
                runtime.machine.global_address(gv))
    raise KeyError(name)


if __name__ == "__main__":
    main()
