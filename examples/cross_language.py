#!/usr/bin/env python
"""Cross-language partitioning: a MiniPy workload drives MiniC
enclave logic.

Both source files lower through the secure-value contract
(:mod:`repro.secval`) into ONE IR module — MiniC first so the MiniPy
call sites resolve its functions — then the usual pipeline analyzes,
partitions and runs the result.  By the time the secure type analysis
sees the module there is no way to tell which language each function
came from: colors, annotations and source locations are all that
remain.

Run:  PYTHONPATH=src python examples/cross_language.py
"""

import os

from repro.core.colors import RELAXED
from repro.core.compiler import PrivagicCompiler
from repro.ir.interp import ENGINES
from repro.runtime import run_partitioned
from repro.secval import compile_cross, confinement_violations

HERE = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    with open(os.path.join(HERE, "vault.c")) as handle:
        minic = handle.read()
    with open(os.path.join(HERE, "vault_workload.mpy")) as handle:
        minipy = handle.read()

    print("1. Lowering both languages into one module...")
    module = compile_cross([("minic", minic, "vault.c"),
                            ("minipy", minipy, "vault_workload.mpy")],
                           module_name="vault")
    print(f"   functions: {sorted(module.functions)}")

    print("\n2. Partitioning (relaxed mode)...")
    compiler = PrivagicCompiler(mode=RELAXED)
    program = compiler.compile_module(module)
    print(f"   partitions: {program.colors}")
    violations = confinement_violations(program)
    assert not violations, violations
    print("   colored-access census: secret code confined to the "
          "vault enclave")

    print("\n3. Running on all engines...")
    expected = None
    for engine in ENGINES:
        result, runtime = run_partitioned(program, "main",
                                          engine=engine)
        print(f"   {engine}: main() = {result}  "
              f"messages={runtime.stats.messages}")
        if expected is None:
            expected = result
        assert result == expected, (engine, result, expected)
    # balance: 1000 +101 +104 +107 = 1312; audit -> last two digits.
    assert expected == 12, expected
    print("\ncross-language OK: MiniPy drove MiniC enclave logic "
          "identically on every engine")


if __name__ == "__main__":
    main()
