#!/usr/bin/env python
"""The Figure 3 experiment as a runnable demo.

Shows the paper's motivation in three acts:

1. a Glamdring-style sequential data-flow analysis partitions the
   two-thread program of Figure 3a and concludes only ``a`` needs
   protection;
2. an adversarial thread interleaving defeats that partition — the
   sensitive value lands in unsafe memory where the attacker reads it;
3. Privagic's explicit secure typing rejects the same program at
   compile time (Figure 3b's FAIL).

Run:  python examples/multithreaded_safety.py
"""

from repro.baselines import AbstractInterpTaint
from repro.core import analyze_module
from repro.core.colors import HARDENED
from repro.errors import SecureTypeError
from repro.frontend import compile_source
from repro.ir.interp import Machine
from repro.sgx import Attacker

SECRET = 31337

FIG3A = """
    long a;
    long b;
    long* x;
    void f(long s) { x = &a; *x = s; }   /* s is sensitive */
    void g(long unused) { x = &b; }      /* runs in parallel */
"""

FIG3B = """
    long color(blue) a;
    long b;
    long color(blue)* x;
    void f(long color(blue) s) { x = &a; *x = s; }
    void g(long unused) { x = &b; }      /* FAIL */
    entry void run(long color(blue) s) { f(s); g(0); }
"""


def act1() -> list:
    print("Act 1: sequential data-flow analysis (Glamdring style)")
    module = compile_source(FIG3A)
    analysis = AbstractInterpTaint(module,
                                   sensitive_params=[("f", "s")])
    protected = sorted(analysis.partition.protected_globals)
    print(f"  the analysis says the secret can only reach: {protected}")
    print("  => the tool protects 'a' and leaves 'b' in unsafe memory")
    return protected


def act2(protected) -> None:
    print("\nAct 2: the hidden pointer modification")
    for prefix in range(1, 40):
        module = compile_source(FIG3A)
        for name in protected:
            gv = module.get_global(name)
            gv.value_type = gv.value_type.with_color("dfenclave")
        machine = Machine(module)
        thread_f = machine.spawn("f", [SECRET], mode="dfenclave")
        thread_g = machine.spawn("g", [0], mode=None)
        for _ in range(prefix):
            if thread_f.finished:
                break
            thread_f.step()
        while not thread_g.finished:
            thread_g.step()
        while not thread_f.finished:
            thread_f.step()
        leaked = Attacker(machine).scan_for(SECRET)
        if leaked:
            print(f"  interleaving: f runs {prefix} instructions, "
                  f"then g changes x to &b, then f stores")
            print(f"  => the secret {SECRET} is now at unsafe "
                  f"address(es) {leaked} — BREACH")
            return
    raise AssertionError("no leaking interleaving found")


def act3() -> None:
    print("\nAct 3: Privagic on the same program (Figure 3b)")
    module = compile_source(FIG3B)
    try:
        analyze_module(module, HARDENED)
        raise AssertionError("Privagic should have rejected this")
    except SecureTypeError as error:
        print(f"  compile-time type error: {error}")
        print("  => 'storing a pointer to an uncolored memory "
              "location in a pointer to a colored memory location "
              "is prohibited' (§3)")


def main() -> None:
    protected = act1()
    act2(protected)
    act3()
    print("\nConclusion: data flow analysis cannot handle "
          "multi-threaded C; explicit secure typing can.")


if __name__ == "__main__":
    main()
