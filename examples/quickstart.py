#!/usr/bin/env python
"""Quickstart: color a struct, compile with Privagic, run partitioned.

This is the paper's Figure 1 idea end to end: a bank-account struct
whose balance lives in an enclave, compiled by the Privagic pipeline
(mem2reg -> secure type analysis -> partitioning) and executed on the
simulated SGX machine with per-enclave worker threads.

Run:  python examples/quickstart.py
"""

from repro.core.colors import RELAXED
from repro.core.compiler import PrivagicCompiler
from repro.ir.printer import print_module
from repro.runtime import run_partitioned
from repro.sgx import SGXAccessPolicy, Attacker

SOURCE = """
    /* The developer adds ONE color annotation: the balance is
       sensitive and must live in the 'vault' enclave. */
    long color(vault) balance = 0;
    long audit_log = 0;

    ignore long declassify(long v);

    void deposit(long amount) {
        balance = balance + amount;
        audit_log = audit_log + 1;        /* unsafe bookkeeping */
    }

    entry long run_day() {
        deposit(100);
        deposit(250);
        deposit(37);
        return declassify(balance);       /* explicit declassification */
    }
"""


def main() -> None:
    print("1. Compiling with Privagic (relaxed mode)...")
    compiler = PrivagicCompiler(mode=RELAXED)
    program = compiler.compile_source(SOURCE)

    print(f"   partitions: {program.colors}")
    for color in program.colors:
        module = program.modules[color]
        print(f"   - {color}: {module.instruction_count()} "
              f"instructions, functions "
              f"{sorted(n for n, f in module.functions.items() if not f.is_declaration)}")

    print("\n2. The vault enclave's code (what gets attested):")
    for line in print_module(program.modules["vault"]).splitlines():
        if line.strip():
            print(f"   {line}")

    print("\n3. Running on the simulated SGX machine...")
    from repro.runtime import PrivagicRuntime
    runtime = PrivagicRuntime(
        program, {"declassify": lambda m, c, a: a[0]})
    SGXAccessPolicy().attach(runtime.machine)
    result = runtime.run("run_day")
    print(f"   run_day() = {result}   (expected 387)")
    print(f"   runtime messages: {runtime.stats.as_dict()}")

    print("\n4. The attacker sweeps unsafe memory for the balance...")
    attacker = Attacker(runtime.machine)
    hits = attacker.scan_for(387)
    print(f"   found at {len(hits)} unsafe address(es) — only the "
          f"declassified copy is visible; the enclave copy is not.")
    try:
        attacker.corrupt_global("balance", 0)
    except Exception as error:
        print(f"   corrupting the enclave balance fails: {error}")

    assert result == 387


if __name__ == "__main__":
    main()
