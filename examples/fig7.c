// The running example of paper §7.3 (Figures 6 and 7): main (blue)
// calls f (uncolored), which calls g writing both blue and red
// globals — so the partitioner splits g across the blue and red
// enclaves and the runtime drives the Fig 7 spawn/cont protocol.
//
// Try:  PYTHONPATH=src python -m repro run examples/fig7.c \
//           --mode relaxed --trace /tmp/fig7-trace.json --stats

int unsafe_g = 0;
int color(blue) blue_g = 10;
int color(red) red_g = 0;

void g(int n) {
    blue_g = n;
    red_g = n;
    printf("Hello\n");
}

// The constant budget and the always-taken guard fold away under
// the default pipeline (constfold + simplify-cfg + dce); without
// those passes the mul/cmp/br survive into f's chunk and cost
// interpreter steps every run.
int f(int y) {
    int budget = 6 * 7;
    if (budget > 0) {
        g(21);
    }
    return budget;
}

entry int main() {
    unsafe_g = 1;
    int x = f(blue_g);
    return x;
}
