// The running example of paper §7.3 (Figures 6 and 7): main (blue)
// calls f (uncolored), which calls g writing both blue and red
// globals — so the partitioner splits g across the blue and red
// enclaves and the runtime drives the Fig 7 spawn/cont protocol.
//
// Try:  PYTHONPATH=src python -m repro run examples/fig7.c \
//           --mode relaxed --trace /tmp/fig7-trace.json --stats

int unsafe_g = 0;
int color(blue) blue_g = 10;
int color(red) red_g = 0;

void g(int n) {
    blue_g = n;
    red_g = n;
    printf("Hello\n");
}

int f(int y) {
    g(21);
    return 42;
}

entry int main() {
    unsafe_g = 1;
    int x = f(blue_g);
    return x;
}
