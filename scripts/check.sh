#!/bin/sh
# Repo check: tier-1 test suite + interpreter-dispatch smoke run.
#
# Usage: scripts/check.sh [extra pytest args]
#   REPRO_ENGINE=legacy scripts/check.sh   # check the legacy engine
#
# The dispatch benchmark runs in smoke mode (tiny workloads, no 5x
# assertion, writes BENCH_interp.smoke.json) so the whole script
# stays CI-fast; run `python benchmarks/bench_interp_dispatch.py`
# for real numbers.
set -e
cd "$(dirname "$0")/.."
export PYTHONPATH=src

# An explicit -m overrides the addopts default, so exclude both
# out-of-band marker families here.
python -m pytest -x -q -m "not slow and not chaos" "$@"
REPRO_BENCH_SMOKE=1 python benchmarks/bench_interp_dispatch.py
rm -f BENCH_interp.smoke.json

# CLI smoke: run the Fig 7 example with tracing and validate the
# output parses as Chrome trace_event JSON.
TRACE_OUT=$(mktemp /tmp/repro-trace.XXXXXX.json)
python -m repro run examples/fig7.c --mode relaxed \
    --trace "$TRACE_OUT" --stats > /dev/null
python -c "import sys; \
    from repro.obs.export import validate_chrome_trace_file; \
    n = validate_chrome_trace_file(sys.argv[1]); \
    print(f'cli smoke: trace OK ({n} events)')" "$TRACE_OUT"
rm -f "$TRACE_OUT"

# Traced-engine smoke: the same Fig 7 run through the trace tier
# (threshold 0 forces compilation even on this small workload) must
# produce the same exit status and stdout as the decoded default.
DECODED_OUT=$(python -m repro run examples/fig7.c --mode relaxed)
TRACED_OUT=$(REPRO_TRACE_THRESHOLD=0 python -m repro run \
    examples/fig7.c --mode relaxed --engine traced)
if [ "$DECODED_OUT" != "$TRACED_OUT" ]; then
    echo "traced smoke: engines disagree:" >&2
    echo "  decoded: $DECODED_OUT" >&2
    echo "  traced:  $TRACED_OUT" >&2
    exit 1
fi
echo "cli smoke: traced engine OK (output matches decoded)"

# Pass-pipeline smoke: run an explicit optimization pipeline with the
# inspection flags, and check the per-pass metrics reach --stats.
REPRO_VERIFY_EACH_PASS=1 python -m repro compile examples/fig7.c \
    --mode relaxed \
    --passes 'mem2reg,constfold,simplify-cfg,dce' \
    --print-after-each --time-passes --stats > /tmp/repro-pipeline.out \
    2> /dev/null
grep -q "pipeline.pass.seconds\[mem2reg\]" /tmp/repro-pipeline.out
grep -q "pipeline.pass.runs\[dce\]" /tmp/repro-pipeline.out
echo "cli smoke: pass pipeline OK (per-pass metrics present)"
rm -f /tmp/repro-pipeline.out

# Chaos smoke: a fixed-seed differential sweep on Fig 7 — every
# seeded fault schedule must end identical to the fault-free run or
# in a typed RuntimeFault (exit 1 on any silently-wrong outcome).
python -m repro.faults.differential examples/fig7.c \
    --seeds 16 --base-seed 1234
# And one explicit injection through the CLI: dropping the first
# spawn must exit with the DeadlockFault code (4).
if python -m repro run examples/fig7.c --mode relaxed \
    --inject 'channel-drop:*:spawn:1' > /dev/null 2>&1; then
    echo "chaos smoke: injected drop did NOT fault" >&2
    exit 1
else
    status=$?
    if [ "$status" -ne 4 ]; then
        echo "chaos smoke: expected exit 4, got $status" >&2
        exit 1
    fi
fi
echo "chaos smoke: typed-fault/identical contract OK"

# Frontend smoke: the MiniPy frontend through the same CLI —
# extension auto-detection must agree with an explicit --frontend,
# and the secure(...)-annotated counter must partition and run.
MINIPY_AUTO=$(python -m repro run examples/secure_counter.mpy \
    --mode hardened)
MINIPY_NAMED=$(python -m repro run examples/secure_counter.mpy \
    --mode hardened --frontend minipy)
if [ "$MINIPY_AUTO" != "$MINIPY_NAMED" ]; then
    echo "frontend smoke: auto-detect and --frontend disagree" >&2
    exit 1
fi
echo "$MINIPY_AUTO" | grep -q "main() = 5"
echo "frontend smoke: minipy OK (auto-detect == --frontend minipy)"

# Cross-language smoke: the MiniPy workload script driving MiniC
# enclave logic through one shared module (repro.secval.compile_cross)
# must partition with zero confinement violations and agree on every
# engine (the script asserts all of that).
python examples/cross_language.py > /dev/null
echo "frontend smoke: cross-language vault OK"

# Chaos smoke, MiniPy arm: the same identical-or-typed contract must
# hold for a MiniPy-lowered partition.
python -m repro.faults.differential examples/secure_counter.mpy \
    --seeds 16 --base-seed 1234 --mode hardened

# Optimizer smoke: the kl placement policy on Fig 7 must preserve the
# program's observable behavior exactly (result + stdout) while the
# partition report shows it actually elided messages.
PLAIN_OUT=$(python -m repro run examples/fig7.c --mode relaxed \
    | grep -v '^messages:')
KL_OUT=$(python -m repro run examples/fig7.c --mode relaxed \
    --optimize kl | grep -v '^messages:')
if [ "$PLAIN_OUT" != "$KL_OUT" ]; then
    echo "optimizer smoke: kl changed program behavior:" >&2
    echo "  none: $PLAIN_OUT" >&2
    echo "  kl:   $KL_OUT" >&2
    exit 1
fi
python -m repro analyze examples/fig7.c --mode relaxed \
    --optimize kl --partition-stats > /tmp/repro-placement.out
grep -q '"policy": "kl"' /tmp/repro-placement.out
grep -q "tcb" /tmp/repro-placement.out
rm -f /tmp/repro-placement.out
echo "optimizer smoke: kl placement OK (behavior identical to none)"

# Chaos smoke, optimized arm: the same fixed-seed sweep against the
# kl-optimized partition — barrier elision must never turn a fault
# into a silently-wrong run.
python -m repro.faults.differential examples/fig7.c \
    --seeds 16 --base-seed 1234 --optimize kl

# Serve smoke: host the partitioned KV app on an ephemeral port, push
# 200 YCSB-C ops through real sockets, and check a clean drain with
# actual request batching (nonzero serve.batch_size histogram).
python - <<'PYEOF'
from repro.serve import SecureKVEngine, ServeConfig, ServerThread
from repro.serve.engine import compile_secure_kv
from repro.serve.loadgen import run_load

config = ServeConfig(port=0, batch=16)
with ServerThread(config,
                  engine=SecureKVEngine(
                      program=compile_secure_kv())) as st:
    report = run_load("127.0.0.1", st.server.port, workload="C",
                      clients=4, ops=200, records=32,
                      value_bytes=32, seed=5)
    st.stop()
assert st.error is None, st.error
assert st.server.drained, "server did not drain cleanly"
assert report["dropped_connections"] == 0, report
assert report["errors"] == 0, report
hist = st.server.registry.histogram("serve.batch_size")
assert hist.count > 0 and hist.max >= 1, hist.get()
print(f"serve smoke: {report['ops']} ops over TCP OK "
      f"({report['ops_per_s']} ops/s, "
      f"mean batch {hist.mean:.1f}, drained cleanly)")
PYEOF

# Sharded-serve smoke: 2 shard-worker processes behind the
# consistent-hash router, a YCSB-A run through real sockets, then a
# shard-kill recovery check — the deterministic crash fuse fires
# mid-run and the router must restart the shard and replay its state
# exactly (zero client-visible errors, ledger intact).
python - <<'PYEOF'
from repro.serve import RouterConfig, RouterThread
from repro.serve.loadgen import run_load

with RouterThread(RouterConfig(port=0, shards=2, batch=8)) as rt:
    report = run_load("127.0.0.1", rt.router.port, workload="A",
                      clients=4, ops=200, records=32,
                      value_bytes=32, seed=5)
    rt.stop()
assert rt.error is None, rt.error
assert rt.router.drained, "router did not drain cleanly"
assert report["dropped_connections"] == 0, report
assert report["errors"] == 0, report
stats = rt.router.stats()
assert stats["ledger_keys"] > 0 and stats["restarts"] == 0, stats
print(f"shard smoke: {report['ops']} ops over 2 shards OK "
      f"({report['ops_per_s']} ops/s, "
      f"ledger={stats['ledger_keys']} keys)")

with RouterThread(RouterConfig(port=0, shards=2, batch=8,
                               crash_after={0: 50})) as rt:
    report = run_load("127.0.0.1", rt.router.port, workload="A",
                      clients=4, ops=200, records=32,
                      value_bytes=32, seed=5)
    rt.stop()
assert rt.error is None, rt.error
assert rt.router.drained, "router did not drain after recovery"
assert report["errors"] == 0, report
assert report["dropped_connections"] == 0, report
registry = rt.router.registry
restarts = registry.counter("router.shard_restarts").get()
replayed = registry.counter("router.replayed_keys").get()
assert restarts == 1, f"expected 1 restart, saw {restarts}"
assert replayed > 0, "recovery replayed no keys"
print(f"shard smoke: kill+recovery OK (1 restart, "
      f"{replayed} keys replayed, no client-visible errors)")
PYEOF

# Netchaos smoke: a fixed-seed socket-chaos differential sweep —
# every injected reset/slow/short/garble schedule must end identical
# to the clean run or in a typed fault (the module exits 1 on any
# silently-wrong or hung run); the shell-level timeout guarantees
# the smoke itself cannot hang the check.
timeout 300 python -m repro.faults.netchaos --seeds 8 \
    --base-seed 1234 --ops 80
echo "netchaos smoke: identical-or-typed contract OK"

# Self-healing smoke: kill a shard mid-run (the deterministic
# crash fuse) with the rebalance policy — the ring must shrink, the
# dead shard's acked state must migrate to the survivor, and the run
# must stay client-clean with the same final ledger as an unkilled
# run.
timeout 300 python - <<'PYEOF'
from repro.serve import RouterConfig, RouterThread
from repro.serve.loadgen import run_load


def one_run(kill):
    config = RouterConfig(port=0, shards=2, batch=8,
                          on_death="rebalance",
                          crash_after={0: 60} if kill else {})
    with RouterThread(config) as rt:
        report = run_load("127.0.0.1", rt.router.port, workload="A",
                          clients=3, ops=240, records=32,
                          value_bytes=24, seed=7, lockstep=True)
        rt.stop()
    assert rt.error is None, rt.error
    assert rt.router.drained, "router did not drain"
    assert report["errors"] == 0, report
    assert report["dropped_connections"] == 0, report
    assert report.get("abandoned", 0) == 0, report
    return rt

clean = one_run(kill=False)
killed = one_run(kill=True)
stats = killed.router.stats()
assert stats["rebalances"] == 1, stats
assert len(stats["ring_nodes"]) == 1, stats
assert stats["lost_keys"] == 0, stats
migrated = killed.router.registry.counter(
    "router.migrated_keys").get()
assert migrated > 0, "rebalance migrated no keys"
assert killed.router.final_digests() == \
    clean.router.final_digests(), \
    "rebalanced ledger diverged from the clean run"
print(f"self-healing smoke: kill+rebalance OK ({migrated} keys "
      f"migrated, ledger identical to the clean run)")

# Degraded mode: kill a shard under on_death=degrade and check a
# lost key answers the typed SHARD_UNAVAILABLE response (not a
# stall), while the survivor's keyspace keeps serving.
from repro.apps.minicache import protocol
from repro.serve.loadgen import LoadClient

config = RouterConfig(port=0, shards=2, batch=8, on_death="degrade",
                      crash_after={0: 40})
with RouterThread(config) as rt:
    client = LoadClient("127.0.0.1", rt.router.port)
    values = {}
    for i in range(60):
        key = f"user{i}"
        assert client.set(key, b"x%d" % i) == protocol.STORED
        values[key] = b"x%d" % i
    lost = served = 0
    for key, value in values.items():
        response = client.get(key)
        if response == protocol.SHARD_UNAVAILABLE:
            lost += 1
        else:
            assert protocol.parse_value_response(response) == value
            served += 1
    client.close()
    rt.stop()
assert rt.error is None, rt.error
assert lost > 0, "no key answered SHARD_UNAVAILABLE"
assert served > 0, "no surviving key kept serving"
assert len(rt.router.stats()["ring_nodes"]) == 1
print(f"self-healing smoke: degraded mode OK ({lost} keys typed "
      f"SHARD_UNAVAILABLE, {served} keys kept serving)")
PYEOF

# BENCH_interp regression gate: the committed dispatch numbers must
# keep the decoded engine >= 5x legacy and the trace tier >= 2.5x
# decoded on the fig7 workload, so interpreter throughput is enforced
# going forward, not just recorded.
python - <<'PYEOF'
import json

with open("BENCH_interp.json") as handle:
    workloads = json.load(handle)["workloads"]
fig7 = workloads["fig7"]
assert fig7["speedup"] >= 5.0, \
    f"committed fig7 decoded speedup below 5x: {fig7['speedup']}x"
assert fig7["traced_vs_decoded"] >= 2.5, \
    f"committed fig7 traced tier below 2.5x decoded: " \
    f"{fig7['traced_vs_decoded']}x"
print(f"bench gate: fig7 decoded {fig7['speedup']}x legacy, "
      f"traced {fig7['traced_vs_decoded']}x decoded OK")
PYEOF

# BENCH_serve regression gate: the committed shard sweep must show
# sharded serving beating the single-process batched server at 16
# clients (and >=4x at the 8-shard/64-client tentpole cell).
python - <<'PYEOF'
import json

with open("BENCH_serve.json") as handle:
    sweep = json.load(handle)["shard_sweep"]
single16 = sweep["single"]["16"]["ops_per_s"]
best16 = max(cells["16"]["ops_per_s"]
             for cells in sweep["sharded"].values())
assert best16 > single16, \
    f"sharded @16 clients lost: {best16} <= {single16} ops/s"
gate = sweep["speedup_vs_single"]["8"]["64"]
assert gate >= 4.0, f"8-shard @64 clients below 4x: {gate}x"
print(f"bench gate: sharded @16 clients {best16} > single "
      f"{single16} ops/s; 8 shards @64 clients {gate}x OK")
PYEOF

# BENCH_partition regression gate: the committed partition-quality
# report must keep the optimizer honest — modeled cost never above
# the unoptimized baseline on any workload, and the best measured
# message reduction (fig7/minicache, kl arm) at or above 20%.
python - <<'PYEOF'
import json

with open("BENCH_partition.json") as handle:
    workloads = json.load(handle)["workloads"]
best = 0.0
for name, workload in workloads.items():
    arms = workload["policies"]
    none = arms["none"]
    for policy in ("kl", "profile"):
        arm = arms[policy]
        assert arm["modeled_cost_cycles"] <= none["modeled_cost_cycles"], \
            f"{name}/{policy}: modeled cost regressed vs none"
    assert workload["differential"]["identical"], \
        f"{name}: optimized arms were not byte-identical to none"
    if name in ("fig7", "minicache"):
        best = max(best,
                   workload["reduction_vs_none"]["kl"]["messages_pct"])
assert best >= 20.0, \
    f"best kl message reduction below 20%: {best:.1f}%"
print(f"bench gate: partition quality OK "
      f"(best kl message reduction {best:.1f}%)")
PYEOF
