#!/bin/sh
# Repo check: tier-1 test suite + interpreter-dispatch smoke run.
#
# Usage: scripts/check.sh [extra pytest args]
#   REPRO_ENGINE=legacy scripts/check.sh   # check the legacy engine
#
# The dispatch benchmark runs in smoke mode (tiny workloads, no 5x
# assertion, writes BENCH_interp.smoke.json) so the whole script
# stays CI-fast; run `python benchmarks/bench_interp_dispatch.py`
# for real numbers.
set -e
cd "$(dirname "$0")/.."
export PYTHONPATH=src

python -m pytest -x -q -m "not slow" "$@"
REPRO_BENCH_SMOKE=1 python benchmarks/bench_interp_dispatch.py
rm -f BENCH_interp.smoke.json
