"""Legacy setup shim so ``pip install -e .`` works without network
access (the environment's setuptools predates PEP 660 editable
installs)."""

from setuptools import setup

setup()
